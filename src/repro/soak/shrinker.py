"""Delta-debugging minimization of failing fault plans.

Given an episode whose invariant suite flagged violations, the
shrinker searches for the smallest *subsequence* of the plan's events
that still reproduces (a subset of) the target violation codes, using
the classic ddmin strategy: split the event list into chunks, try
each chunk alone, then each complement, halving granularity until
1-minimal or the run budget is exhausted.

Candidates are built from the plan's *serialized* event dicts — never
from shared ``FaultEvent`` objects — so every probe run gets fresh
loss-model instances (a :class:`GilbertElliott` chain mutates as it
steps).  Candidate plans are rebuilt with ``strict=False``: dropping
an outage may orphan its heal, which is exactly the kind of
temporally-lax plan a reproducer is allowed to be (the warning is
suppressed during the search).

The surviving subsequence is serialized as a **reproducer** — a
schema-tagged JSON document carrying the world parameters, seed, and
minimized plan — runnable via ``repro soak --replay <file>``.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

#: Schema tag for reproducer documents.
REPRODUCER_SCHEMA = "soak-reproducer/v1"


@dataclass
class ShrinkResult:
    """Outcome of one minimization."""

    events: List[dict]
    original_events: int
    runs: int
    target_codes: List[str]
    converged: bool

    @property
    def shrunk_events(self) -> int:
        return len(self.events)

    @property
    def ratio(self) -> float:
        if self.original_events == 0:
            return 1.0
        return self.shrunk_events / self.original_events


def _plan_doc(events: List[dict]) -> dict:
    from repro.faults.plan import PLAN_SCHEMA

    return {"schema": PLAN_SCHEMA, "strict": False, "events": list(events)}


def shrink_events(
    events: List[dict],
    fails: Callable[[dict], bool],
    *,
    max_runs: int = 48,
) -> ShrinkResult:
    """ddmin over serialized plan events.

    ``fails(plan_doc)`` must return True when the candidate still
    reproduces the target violation.  The *full* event list is assumed
    failing (the caller observed it fail); it is not re-run.  Returns
    the smallest failing subsequence found within ``max_runs`` probe
    runs — ``converged`` is False when the budget cut the search short.
    """
    current = list(events)
    runs = 0
    converged = True

    def probe(candidate: List[dict]) -> bool:
        nonlocal runs
        runs += 1
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return fails(_plan_doc(candidate))

    granularity = 2
    while len(current) >= 2:
        if runs >= max_runs:
            converged = False
            break
        granularity = min(granularity, len(current))
        chunk = max(1, len(current) // granularity)
        chunks = [
            current[i : i + chunk] for i in range(0, len(current), chunk)
        ]
        reduced = False
        # Try each chunk alone (fast path straight to tiny plans) ...
        for piece in chunks:
            if len(piece) == len(current):
                continue
            if runs >= max_runs:
                converged = False
                break
            if probe(piece):
                current = list(piece)
                granularity = 2
                reduced = True
                break
        if reduced:
            continue
        # ... then each complement (drop one chunk at a time).
        for i in range(len(chunks)):
            complement = [
                e for j, piece in enumerate(chunks) if j != i for e in piece
            ]
            if not complement or len(complement) == len(current):
                continue
            if runs >= max_runs:
                converged = False
                break
            if probe(complement):
                current = complement
                granularity = max(2, granularity - 1)
                reduced = True
                break
        if reduced:
            continue
        if granularity >= len(current):
            break  # 1-minimal
        granularity = min(len(current), granularity * 2)

    return ShrinkResult(
        events=current,
        original_events=len(events),
        runs=runs,
        target_codes=[],
        converged=converged,
    )


def shrink_episode(
    harness,
    result,
    *,
    max_runs: int = 48,
    target_codes: Optional[List[str]] = None,
) -> ShrinkResult:
    """Minimize a failing :class:`~repro.soak.harness.EpisodeResult`.

    Targets the episode's non-replay violation codes by default (a
    candidate *fails* when it reproduces at least one of them); when
    the episode only diverged on replay, each probe runs twice and
    compares signatures instead.
    """
    codes = set(target_codes or [])
    if not codes:
        codes = {v.code for v in result.violations if v.code != "REPLAY_DIVERGED"}
    replay_only = not codes
    if replay_only:
        codes = {"REPLAY_DIVERGED"}

    def fails(plan_doc: dict) -> bool:
        violations, signature, _ = harness.run_plan_obj(
            plan_doc,
            result.sim_seed,
            strict=False,
            planted_bug=harness.planted_bug,
            wal_label="shrink",
        )
        if replay_only:
            again, signature_b, _ = harness.run_plan_obj(
                plan_doc,
                result.sim_seed,
                strict=False,
                planted_bug=harness.planted_bug,
                wal_label="shrink-replay",
            )
            return signature_b != signature or sorted(
                v.code for v in again
            ) != sorted(v.code for v in violations)
        return any(v.code in codes for v in violations)

    shrunk = shrink_events(
        list(result.plan_obj["events"]), fails, max_runs=max_runs
    )
    shrunk.target_codes = sorted(codes)
    return shrunk


# ----------------------------------------------------------------------
# Reproducer documents
# ----------------------------------------------------------------------


def build_reproducer(harness, result, shrunk: ShrinkResult) -> dict:
    """A self-contained JSON document that replays the minimized
    failure: world shape + seed + shrunken plan + what to expect."""
    return {
        "schema": REPRODUCER_SCHEMA,
        "master_seed": harness.master_seed,
        "tier": harness.tier.name,
        "episode": result.episode,
        "sim_seed": result.sim_seed,
        "world": harness.world_params(),
        "planted_bug": harness.planted_bug,
        "target_codes": shrunk.target_codes,
        "original_events": shrunk.original_events,
        "shrunk_events": shrunk.shrunk_events,
        "shrink_runs": shrunk.runs,
        "plan": _plan_doc(shrunk.events),
    }


def write_reproducer(path: str, reproducer: dict) -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(reproducer, f, indent=2, sort_keys=True)
        f.write("\n")


def load_reproducer(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        obj = json.load(f)
    if not isinstance(obj, dict) or obj.get("schema") != REPRODUCER_SCHEMA:
        raise ValueError(
            f"{path}: not a soak reproducer (expected schema "
            f"{REPRODUCER_SCHEMA!r}, got {obj.get('schema')!r})"
        )
    for key in ("sim_seed", "world", "plan"):
        if key not in obj:
            raise ValueError(f"{path}: reproducer is missing {key!r}")
    return obj


def replay_reproducer(reproducer: dict, wal_root: str):
    """Re-run a reproducer's minimized plan in its recorded world.

    Returns ``(violations, signature, stats)`` from a single arm —
    exactly what the original shrink probes measured.
    """
    from repro.soak.harness import SoakHarness

    world: Dict[str, object] = dict(reproducer["world"])
    harness = SoakHarness(
        int(reproducer.get("master_seed", 0)),
        wal_root=wal_root,
        tier=reproducer.get("tier", "medium"),
        check_replay=False,
        planted_bug=reproducer.get("planted_bug"),
        **world,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return harness.run_plan_obj(
            reproducer["plan"],
            int(reproducer["sim_seed"]),
            strict=False,
            planted_bug=reproducer.get("planted_bug"),
            wal_label="replay",
        )


__all__ = [
    "REPRODUCER_SCHEMA",
    "ShrinkResult",
    "build_reproducer",
    "load_reproducer",
    "replay_reproducer",
    "shrink_episode",
    "shrink_events",
    "write_reproducer",
]
