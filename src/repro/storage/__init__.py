"""Pluggable storage: the datastore interface and its backends.

See :mod:`repro.storage.base` for the contract, ``docs/storage.md``
for the architecture, and ``REPRO_DATASTORE`` for selection.
"""

from repro.storage.base import (
    CHECKPOINT_SCHEMA_VERSION,
    ConformanceError,
    StorageBackend,
    check_backend_conformance,
    snapshot_dict,
)
from repro.storage.factory import (
    BACKEND_NAMES,
    DATASTORE_DIR_ENV,
    DATASTORE_ENV,
    default_spec,
    resolve_backend,
)
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite3_backend import SqliteBackend

__all__ = [
    "BACKEND_NAMES",
    "CHECKPOINT_SCHEMA_VERSION",
    "ConformanceError",
    "DATASTORE_DIR_ENV",
    "DATASTORE_ENV",
    "MemoryBackend",
    "SqliteBackend",
    "StorageBackend",
    "check_backend_conformance",
    "default_spec",
    "resolve_backend",
    "snapshot_dict",
]
