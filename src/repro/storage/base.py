"""The pluggable datastore interface.

Every Sense-Aid server owns a :class:`StorageBackend` holding its
durable-ish state: the device and task datastores (document KV
namespaces) and append-only logs (selection events, stored readings).
The in-memory backend reproduces the seed's plain-dict behaviour; the
sqlite backend keeps the same state on disk so it survives the process
and so reading logs never have to live in RAM.

Two shapes of state, two sets of operations:

* **Documents** — small mutable records addressed by ``(namespace,
  key)``.  Docs are JSON-compatible dicts; ``keys()`` always returns
  them sorted, so iteration order is a property of the interface, not
  of any backend's hash function (the selector depends on it).
* **Logs** — append-only sequences per namespace, each entry a doc
  with an optional ``tag`` secondary key (readings tag by task id).
  Entries come back in append order; a tag filter preserves that
  order.  ``prune_tagged`` exists because deleting a task purges its
  readings.

Checkpoints snapshot the document namespaces plus per-log watermarks
(entry counts) into one JSON-compatible dict — the exact serialization
story :mod:`repro.core.persistence` already proves — and ``restore``
rolls the backend back to it (documents replaced, logs truncated to
the watermark).  Both backends share the format, so a checkpoint taken
on one backend restores onto the other.

Conformance: :func:`check_backend_conformance` drives any backend
factory through the full contract; the test suite runs it over every
shipped backend, and ``repro storage check`` runs it from the CLI.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Iterator, List, Optional

#: Version stamp of the checkpoint snapshot format.
CHECKPOINT_SCHEMA_VERSION = 1

Doc = Dict[str, Any]


class StorageBackend(abc.ABC):
    """Abstract namespaced document store + append-only log store."""

    #: Short name used in diagnostics and ``REPRO_DATASTORE`` specs.
    name: str = "abstract"

    # -- documents ------------------------------------------------------

    @abc.abstractmethod
    def put_doc(self, ns: str, key: str, doc: Doc) -> None:
        """Insert or replace the document at ``(ns, key)``."""

    @abc.abstractmethod
    def get_doc(self, ns: str, key: str) -> Optional[Doc]:
        """The document at ``(ns, key)``, or None."""

    @abc.abstractmethod
    def delete_doc(self, ns: str, key: str) -> bool:
        """Remove the document; returns whether it existed."""

    @abc.abstractmethod
    def doc_keys(self, ns: str) -> List[str]:
        """All keys in ``ns``, sorted lexicographically."""

    @abc.abstractmethod
    def doc_count(self, ns: str) -> int:
        """Number of documents in ``ns``."""

    def has_doc(self, ns: str, key: str) -> bool:
        return self.get_doc(ns, key) is not None

    @abc.abstractmethod
    def clear_docs(self, ns: str) -> None:
        """Drop every document in ``ns``."""

    # -- logs -----------------------------------------------------------

    @abc.abstractmethod
    def append_log(self, ns: str, doc: Doc, *, tag: Optional[str] = None) -> int:
        """Append one entry; returns its sequence number (0-based)."""

    @abc.abstractmethod
    def scan_log(self, ns: str, *, tag: Optional[str] = None) -> Iterator[Doc]:
        """Entries in append order, optionally only those with ``tag``."""

    @abc.abstractmethod
    def log_count(self, ns: str, *, tag: Optional[str] = None) -> int:
        """Number of (optionally tagged) entries in ``ns``."""

    @abc.abstractmethod
    def prune_tagged(self, ns: str, tag: str) -> int:
        """Delete every entry tagged ``tag``; returns how many went."""

    @abc.abstractmethod
    def clear_log(self, ns: str) -> None:
        """Drop every entry in ``ns``."""

    # -- checkpoints ----------------------------------------------------

    @abc.abstractmethod
    def checkpoint(self, tag: str) -> Doc:
        """Atomically snapshot docs + log watermarks under ``tag``.

        Returns the snapshot (see :func:`snapshot_dict`); the backend
        also retains it so :meth:`restore` can find it by tag.
        """

    @abc.abstractmethod
    def restore(self, tag: str) -> bool:
        """Roll back to the checkpoint ``tag``.

        Documents are replaced wholesale; every log is truncated to
        the checkpointed watermark.  Returns False when no checkpoint
        with that tag exists (the backend is left untouched).
        """

    @abc.abstractmethod
    def checkpoint_tags(self) -> List[str]:
        """Tags of retained checkpoints, oldest first."""

    # -- lifecycle ------------------------------------------------------

    def flush(self) -> None:
        """Push buffered writes to the durable medium (no-op default)."""

    def close(self) -> None:
        """Release resources (no-op default)."""

    # -- introspection --------------------------------------------------

    @abc.abstractmethod
    def namespaces(self) -> Dict[str, List[str]]:
        """``{"docs": [...], "logs": [...]}`` namespaces currently held."""


def snapshot_dict(backend: StorageBackend, tag: str) -> Doc:
    """The shared checkpoint payload: docs + log watermarks.

    Backends build their checkpoints from this helper so the on-disk
    format is identical everywhere (and therefore portable between
    backends).
    """
    spaces = backend.namespaces()
    return {
        "schema": CHECKPOINT_SCHEMA_VERSION,
        "tag": tag,
        "docs": {
            ns: {key: backend.get_doc(ns, key) for key in backend.doc_keys(ns)}
            for ns in spaces["docs"]
        },
        "log_watermarks": {ns: backend.log_count(ns) for ns in spaces["logs"]},
    }


class ConformanceError(AssertionError):
    """A backend violated the :class:`StorageBackend` contract."""


def check_backend_conformance(factory) -> List[str]:
    """Drive a fresh backend through the interface contract.

    ``factory`` must return a new empty backend each call.  Returns
    the list of checks performed; raises :class:`ConformanceError` on
    the first violation.  Used by the test suite (parametrized over
    every shipped backend) and by ``repro storage check``.
    """
    checks: List[str] = []

    def expect(condition: bool, label: str) -> None:
        if not condition:
            raise ConformanceError(f"backend contract violated: {label}")
        checks.append(label)

    backend = factory()
    try:
        # Documents: upsert, get, ordering, delete-then-reinsert.
        expect(backend.get_doc("d", "a") is None, "get on empty ns is None")
        backend.put_doc("d", "b", {"v": 1})
        backend.put_doc("d", "a", {"v": 2})
        backend.put_doc("d", "c", {"v": 3})
        expect(backend.doc_keys("d") == ["a", "b", "c"], "keys sorted")
        expect(backend.doc_count("d") == 3, "doc_count")
        expect(backend.has_doc("d", "b"), "has_doc")
        backend.put_doc("d", "b", {"v": 9})
        expect(backend.get_doc("d", "b") == {"v": 9}, "put replaces")
        expect(backend.delete_doc("d", "b"), "delete returns True")
        expect(not backend.delete_doc("d", "b"), "second delete returns False")
        backend.put_doc("d", "b", {"v": 10})
        expect(
            backend.get_doc("d", "b") == {"v": 10},
            "delete-then-reinsert yields the new doc, not the old",
        )
        expect(backend.doc_keys("d") == ["a", "b", "c"], "reinsert keeps order")

        # Namespace isolation.
        backend.put_doc("other", "a", {"v": 0})
        expect(backend.doc_count("d") == 3, "namespaces are isolated")

        # Logs: order, tags, counts, prune.
        s0 = backend.append_log("l", {"n": 0}, tag="t1")
        s1 = backend.append_log("l", {"n": 1}, tag="t2")
        s2 = backend.append_log("l", {"n": 2}, tag="t1")
        expect((s0, s1, s2) == (0, 1, 2), "sequence numbers dense from 0")
        expect(
            [e["n"] for e in backend.scan_log("l")] == [0, 1, 2],
            "scan in append order",
        )
        expect(
            [e["n"] for e in backend.scan_log("l", tag="t1")] == [0, 2],
            "tagged scan preserves order",
        )
        expect(backend.log_count("l") == 3, "log_count")
        expect(backend.log_count("l", tag="t1") == 2, "tagged log_count")

        # Checkpoint / restore semantics.
        snap = backend.checkpoint("ck1")
        expect(snap["schema"] == CHECKPOINT_SCHEMA_VERSION, "checkpoint schema")
        expect("ck1" in backend.checkpoint_tags(), "checkpoint retained")
        backend.put_doc("d", "z", {"v": 4})
        backend.delete_doc("d", "a")
        backend.append_log("l", {"n": 3}, tag="t2")
        expect(backend.restore("ck1"), "restore finds the tag")
        expect(backend.doc_keys("d") == ["a", "b", "c"], "restore rolls docs back")
        expect(backend.get_doc("d", "a") == {"v": 2}, "restored doc content")
        expect(
            [e["n"] for e in backend.scan_log("l")] == [0, 1, 2],
            "restore truncates logs to the watermark",
        )
        expect(not backend.restore("no-such"), "restore of unknown tag is False")

        # Prune + clear.
        expect(backend.prune_tagged("l", "t1") == 2, "prune_tagged count")
        expect(
            [e["n"] for e in backend.scan_log("l")] == [1],
            "prune keeps untagged survivors in order",
        )
        backend.clear_log("l")
        expect(backend.log_count("l") == 0, "clear_log")
        backend.clear_docs("d")
        expect(backend.doc_count("d") == 0, "clear_docs")
        expect(backend.doc_count("other") == 1, "clear_docs is per-namespace")

        # Appends after a restore continue the truncated sequence.
        backend.append_log("l2", {"n": 0})
        backend.checkpoint("ck2")
        backend.append_log("l2", {"n": 1})
        backend.restore("ck2")
        seq = backend.append_log("l2", {"n": 9})
        expect(seq == 1, "post-restore appends continue from the watermark")
        expect(
            [e["n"] for e in backend.scan_log("l2")] == [0, 9],
            "post-restore log content",
        )

        backend.flush()
        checks.append("flush")
    finally:
        backend.close()
    return checks
