"""Backend selection: config/env-driven, ``REPRO_DATASTORE``.

``resolve_backend()`` is how every server, app server, and world
builder obtains its storage.  The spec grammar:

* ``memory`` (default) — :class:`~repro.storage.memory.MemoryBackend`.
* ``sqlite`` — :class:`~repro.storage.sqlite3_backend.SqliteBackend`
  on a fresh unique file under ``REPRO_DATASTORE_DIR`` (or a temp
  directory when unset); every call returns an independent store, so
  each server in a sharded/federated world gets its own file.
* ``sqlite:/path/to.db`` — sqlite on exactly that file (shared state,
  e.g. reattaching to a previous run's store).

Setting ``REPRO_DATASTORE=sqlite`` therefore flips the whole system —
tier-1 suite included — onto the on-disk backend, which is what the
``storage-matrix`` CI job runs.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional

from repro.storage.base import StorageBackend
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite3_backend import SqliteBackend

#: Environment variable naming the backend spec.
DATASTORE_ENV = "REPRO_DATASTORE"
#: Environment variable pinning where anonymous sqlite files go (the
#: CI matrix points this at an uploadable artifact directory).
DATASTORE_DIR_ENV = "REPRO_DATASTORE_DIR"

BACKEND_NAMES = ("memory", "sqlite")


def default_spec() -> str:
    """The backend spec currently in force (env or the memory default)."""
    spec = os.environ.get(DATASTORE_ENV, "").strip()
    return spec or "memory"


def resolve_backend(spec: Optional[str] = None) -> StorageBackend:
    """Build a fresh backend from a spec (default: the environment's).

    Raises :class:`ValueError` on an unknown spec so a typo in
    ``REPRO_DATASTORE`` fails loudly instead of silently running on
    the wrong backend.
    """
    spec = (spec or default_spec()).strip()
    if spec == "memory":
        return MemoryBackend()
    if spec == "sqlite":
        return SqliteBackend(_fresh_sqlite_path())
    if spec.startswith("sqlite:"):
        path = spec.split(":", 1)[1]
        if not path:
            raise ValueError("sqlite spec needs a path after the colon")
        return SqliteBackend(path)
    raise ValueError(
        f"unknown datastore spec {spec!r}; expected one of "
        f"{', '.join(BACKEND_NAMES)} or sqlite:<path>"
    )


def _fresh_sqlite_path() -> str:
    root = os.environ.get(DATASTORE_DIR_ENV, "").strip()
    if root:
        os.makedirs(root, exist_ok=True)
        fd, path = tempfile.mkstemp(
            dir=root, prefix="datastore-", suffix=".sqlite3"
        )
    else:
        directory = tempfile.mkdtemp(prefix="repro-datastore-")
        fd, path = tempfile.mkstemp(
            dir=directory, prefix="datastore-", suffix=".sqlite3"
        )
    os.close(fd)
    # sqlite wants to create its own file layout; an empty placeholder
    # from mkstemp is fine (sqlite treats a zero-length file as new).
    return path
