"""The in-memory storage backend — the seed's dicts, behind the interface.

Documents live in plain dicts, logs in plain lists; nothing is
serialized on the hot path, so a server on this backend performs
exactly like the seed did.  Checkpoints deep-copy state through the
shared JSON-compatible snapshot format; with a ``directory`` the
snapshot is also written crash-safely to disk (temp file + atomic
rename), so a fresh process can :meth:`~MemoryBackend.restore` what an
earlier one checkpointed — the same discipline the sqlite backend gets
for free from its file.
"""

from __future__ import annotations

import copy
import json
import os
import tempfile
from typing import Dict, Iterator, List, Optional, Tuple

from repro.storage.base import (
    CHECKPOINT_SCHEMA_VERSION,
    Doc,
    StorageBackend,
    snapshot_dict,
)


class MemoryBackend(StorageBackend):
    """Dict/list-backed backend; optionally spills checkpoints to disk."""

    name = "memory"

    def __init__(self, directory: Optional[str] = None) -> None:
        self._docs: Dict[str, Dict[str, Doc]] = {}
        #: ns -> (next sequence number, rows); rows are (seq, tag, doc).
        self._logs: Dict[str, Tuple[int, List[Tuple[int, Optional[str], Doc]]]] = {}
        self._checkpoints: Dict[str, Doc] = {}
        self._checkpoint_order: List[str] = []
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            self._load_spilled_checkpoints()

    # -- documents ------------------------------------------------------

    def put_doc(self, ns: str, key: str, doc: Doc) -> None:
        self._docs.setdefault(ns, {})[key] = doc

    def get_doc(self, ns: str, key: str) -> Optional[Doc]:
        return self._docs.get(ns, {}).get(key)

    def delete_doc(self, ns: str, key: str) -> bool:
        space = self._docs.get(ns)
        if space is None or key not in space:
            return False
        del space[key]
        return True

    def doc_keys(self, ns: str) -> List[str]:
        return sorted(self._docs.get(ns, {}))

    def doc_count(self, ns: str) -> int:
        return len(self._docs.get(ns, {}))

    def has_doc(self, ns: str, key: str) -> bool:
        return key in self._docs.get(ns, {})

    def clear_docs(self, ns: str) -> None:
        self._docs.pop(ns, None)

    # -- logs -----------------------------------------------------------

    def append_log(self, ns: str, doc: Doc, *, tag: Optional[str] = None) -> int:
        seq, rows = self._logs.get(ns, (0, []))
        rows.append((seq, tag, doc))
        self._logs[ns] = (seq + 1, rows)
        return seq

    def scan_log(self, ns: str, *, tag: Optional[str] = None) -> Iterator[Doc]:
        _, rows = self._logs.get(ns, (0, []))
        for _, row_tag, doc in rows:
            if tag is None or row_tag == tag:
                yield doc

    def log_count(self, ns: str, *, tag: Optional[str] = None) -> int:
        _, rows = self._logs.get(ns, (0, []))
        if tag is None:
            return len(rows)
        return sum(1 for _, row_tag, _ in rows if row_tag == tag)

    def prune_tagged(self, ns: str, tag: str) -> int:
        seq, rows = self._logs.get(ns, (0, []))
        kept = [row for row in rows if row[1] != tag]
        removed = len(rows) - len(kept)
        self._logs[ns] = (seq, kept)
        return removed

    def clear_log(self, ns: str) -> None:
        self._logs.pop(ns, None)

    # -- checkpoints ----------------------------------------------------

    def checkpoint(self, tag: str) -> Doc:
        snap = copy.deepcopy(snapshot_dict(self, tag))
        if tag not in self._checkpoints:
            self._checkpoint_order.append(tag)
        self._checkpoints[tag] = snap
        if self.directory is not None:
            self._spill_checkpoint(tag, snap)
        return snap

    def restore(self, tag: str) -> bool:
        snap = self._checkpoints.get(tag)
        if snap is None:
            return False
        self._docs = {
            ns: dict(copy.deepcopy(docs)) for ns, docs in snap["docs"].items()
        }
        watermarks = snap["log_watermarks"]
        # Logs born after the checkpoint roll back to empty (watermark 0).
        for ns in list(self._logs):
            watermark = watermarks.get(ns, 0)
            _, rows = self._logs[ns]
            kept = [row for row in rows if row[0] < watermark]
            self._logs[ns] = (watermark, kept)
        return True

    def checkpoint_tags(self) -> List[str]:
        return list(self._checkpoint_order)

    # -- lifecycle / introspection --------------------------------------

    def namespaces(self) -> Dict[str, List[str]]:
        return {"docs": sorted(self._docs), "logs": sorted(self._logs)}

    # -- disk spill -----------------------------------------------------

    def _checkpoint_path(self, tag: str) -> str:
        safe = "".join(c if c.isalnum() or c in "._-" else "_" for c in tag)
        return os.path.join(self.directory, f"checkpoint-{safe}.json")

    def _spill_checkpoint(self, tag: str, snap: Doc) -> None:
        path = self._checkpoint_path(tag)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(snap, f, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _load_spilled_checkpoints(self) -> None:
        for name in sorted(os.listdir(self.directory)):
            if not (name.startswith("checkpoint-") and name.endswith(".json")):
                continue
            path = os.path.join(self.directory, name)
            try:
                with open(path, "r", encoding="utf-8") as f:
                    snap = json.load(f)
            except (OSError, json.JSONDecodeError):
                continue  # truncated spill from a crashed writer: ignore
            if snap.get("schema") != CHECKPOINT_SCHEMA_VERSION:
                continue
            tag = snap.get("tag")
            if isinstance(tag, str) and tag not in self._checkpoints:
                self._checkpoints[tag] = snap
                self._checkpoint_order.append(tag)
