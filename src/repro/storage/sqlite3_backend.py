"""The sqlite/on-disk storage backend.

State lives in one sqlite file: a ``docs`` table for the document
namespaces (device records, task specs), a ``logs`` table for the
append-only streams (stored readings, selection events), and a
``checkpoints`` table holding the shared JSON snapshot format (docs +
log watermarks — see :mod:`repro.storage.base`).

Writes ride sqlite's own journal in WAL mode with batched commits: the
hot path (one reading append, one doc upsert) costs one prepared
INSERT, and an explicit commit lands every ``commit_interval`` writes
and at every flush/checkpoint/scan boundary.  Between commits, crash
durability is the job of :class:`repro.core.wal.DurableLog` — the same
division of labour the in-memory backend lives by, which is what keeps
the two backends bit-identical under the recovery property tests.

Log scans stream straight off the cursor, so a million-reading run
never materialises its readings in process memory.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
from typing import Dict, Iterator, List, Optional

from repro.storage.base import Doc, StorageBackend, snapshot_dict

_SCHEMA = """
CREATE TABLE IF NOT EXISTS docs (
    ns   TEXT NOT NULL,
    k    TEXT NOT NULL,
    doc  TEXT NOT NULL,
    PRIMARY KEY (ns, k)
);
CREATE TABLE IF NOT EXISTS logs (
    ns   TEXT NOT NULL,
    seq  INTEGER NOT NULL,
    tag  TEXT,
    doc  TEXT NOT NULL,
    PRIMARY KEY (ns, seq)
);
CREATE INDEX IF NOT EXISTS logs_by_tag ON logs (ns, tag, seq);
CREATE TABLE IF NOT EXISTS log_heads (
    ns        TEXT PRIMARY KEY,
    next_seq  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS checkpoints (
    tag        TEXT PRIMARY KEY,
    ordinal    INTEGER NOT NULL,
    snapshot   TEXT NOT NULL
);
"""


class SqliteBackend(StorageBackend):
    """Single-file sqlite backend with batched commits."""

    name = "sqlite"

    def __init__(
        self, path: Optional[str] = None, *, commit_interval: int = 256
    ) -> None:
        if commit_interval < 1:
            raise ValueError("commit_interval must be at least 1")
        if path is None:
            root = tempfile.mkdtemp(prefix="repro-sqlite-")
            path = os.path.join(root, "datastore.sqlite3")
        else:
            parent = os.path.dirname(os.path.abspath(path))
            os.makedirs(parent, exist_ok=True)
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.commit()
        self._commit_interval = commit_interval
        self._dirty_writes = 0
        self._closed = False

    # -- write batching -------------------------------------------------

    def _wrote(self) -> None:
        self._dirty_writes += 1
        if self._dirty_writes >= self._commit_interval:
            self.flush()

    def flush(self) -> None:
        if self._dirty_writes:
            self._conn.commit()
            self._dirty_writes = 0

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.flush()
            self._conn.close()
        finally:
            self._closed = True

    # -- documents ------------------------------------------------------

    def put_doc(self, ns: str, key: str, doc: Doc) -> None:
        self._conn.execute(
            "INSERT INTO docs (ns, k, doc) VALUES (?, ?, ?) "
            "ON CONFLICT (ns, k) DO UPDATE SET doc = excluded.doc",
            (ns, key, json.dumps(doc, sort_keys=True)),
        )
        self._wrote()

    def get_doc(self, ns: str, key: str) -> Optional[Doc]:
        row = self._conn.execute(
            "SELECT doc FROM docs WHERE ns = ? AND k = ?", (ns, key)
        ).fetchone()
        return None if row is None else json.loads(row[0])

    def delete_doc(self, ns: str, key: str) -> bool:
        cursor = self._conn.execute(
            "DELETE FROM docs WHERE ns = ? AND k = ?", (ns, key)
        )
        self._wrote()
        return cursor.rowcount > 0

    def doc_keys(self, ns: str) -> List[str]:
        rows = self._conn.execute(
            "SELECT k FROM docs WHERE ns = ? ORDER BY k", (ns,)
        ).fetchall()
        return [row[0] for row in rows]

    def doc_count(self, ns: str) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM docs WHERE ns = ?", (ns,)
        ).fetchone()
        return int(row[0])

    def has_doc(self, ns: str, key: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM docs WHERE ns = ? AND k = ?", (ns, key)
        ).fetchone()
        return row is not None

    def clear_docs(self, ns: str) -> None:
        self._conn.execute("DELETE FROM docs WHERE ns = ?", (ns,))
        self._wrote()

    # -- logs -----------------------------------------------------------

    def append_log(self, ns: str, doc: Doc, *, tag: Optional[str] = None) -> int:
        row = self._conn.execute(
            "SELECT next_seq FROM log_heads WHERE ns = ?", (ns,)
        ).fetchone()
        seq = 0 if row is None else int(row[0])
        self._conn.execute(
            "INSERT INTO logs (ns, seq, tag, doc) VALUES (?, ?, ?, ?)",
            (ns, seq, tag, json.dumps(doc, sort_keys=True)),
        )
        self._conn.execute(
            "INSERT INTO log_heads (ns, next_seq) VALUES (?, ?) "
            "ON CONFLICT (ns) DO UPDATE SET next_seq = excluded.next_seq",
            (ns, seq + 1),
        )
        self._wrote()
        return seq

    def scan_log(self, ns: str, *, tag: Optional[str] = None) -> Iterator[Doc]:
        if tag is None:
            cursor = self._conn.execute(
                "SELECT doc FROM logs WHERE ns = ? ORDER BY seq", (ns,)
            )
        else:
            cursor = self._conn.execute(
                "SELECT doc FROM logs WHERE ns = ? AND tag = ? ORDER BY seq",
                (ns, tag),
            )
        for (doc,) in cursor:
            yield json.loads(doc)

    def log_count(self, ns: str, *, tag: Optional[str] = None) -> int:
        if tag is None:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM logs WHERE ns = ?", (ns,)
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM logs WHERE ns = ? AND tag = ?", (ns, tag)
            ).fetchone()
        return int(row[0])

    def prune_tagged(self, ns: str, tag: str) -> int:
        cursor = self._conn.execute(
            "DELETE FROM logs WHERE ns = ? AND tag = ?", (ns, tag)
        )
        self._wrote()
        return cursor.rowcount

    def clear_log(self, ns: str) -> None:
        self._conn.execute("DELETE FROM logs WHERE ns = ?", (ns,))
        self._conn.execute("DELETE FROM log_heads WHERE ns = ?", (ns,))
        self._wrote()

    # -- checkpoints ----------------------------------------------------

    def checkpoint(self, tag: str) -> Doc:
        snap = snapshot_dict(self, tag)
        row = self._conn.execute(
            "SELECT COALESCE(MAX(ordinal), -1) FROM checkpoints"
        ).fetchone()
        existing = self._conn.execute(
            "SELECT ordinal FROM checkpoints WHERE tag = ?", (tag,)
        ).fetchone()
        ordinal = int(existing[0]) if existing is not None else int(row[0]) + 1
        self._conn.execute(
            "INSERT INTO checkpoints (tag, ordinal, snapshot) VALUES (?, ?, ?) "
            "ON CONFLICT (tag) DO UPDATE SET snapshot = excluded.snapshot",
            (tag, ordinal, json.dumps(snap, sort_keys=True)),
        )
        # A checkpoint is a durability point by definition: commit now.
        self._conn.commit()
        self._dirty_writes = 0
        return snap

    def restore(self, tag: str) -> bool:
        row = self._conn.execute(
            "SELECT snapshot FROM checkpoints WHERE tag = ?", (tag,)
        ).fetchone()
        if row is None:
            return False
        snap = json.loads(row[0])
        self._conn.execute("DELETE FROM docs")
        for ns, docs in snap["docs"].items():
            for key, doc in docs.items():
                self._conn.execute(
                    "INSERT INTO docs (ns, k, doc) VALUES (?, ?, ?)",
                    (ns, key, json.dumps(doc, sort_keys=True)),
                )
        watermarks = snap["log_watermarks"]
        log_spaces = [
            r[0]
            for r in self._conn.execute("SELECT ns FROM log_heads").fetchall()
        ]
        for ns in log_spaces:
            watermark = int(watermarks.get(ns, 0))
            self._conn.execute(
                "DELETE FROM logs WHERE ns = ? AND seq >= ?", (ns, watermark)
            )
            self._conn.execute(
                "UPDATE log_heads SET next_seq = ? WHERE ns = ?", (watermark, ns)
            )
        self._conn.commit()
        self._dirty_writes = 0
        return True

    def checkpoint_tags(self) -> List[str]:
        rows = self._conn.execute(
            "SELECT tag FROM checkpoints ORDER BY ordinal"
        ).fetchall()
        return [row[0] for row in rows]

    # -- introspection --------------------------------------------------

    def namespaces(self) -> Dict[str, List[str]]:
        docs = [
            row[0]
            for row in self._conn.execute(
                "SELECT DISTINCT ns FROM docs ORDER BY ns"
            ).fetchall()
        ]
        logs = [
            row[0]
            for row in self._conn.execute(
                "SELECT ns FROM log_heads ORDER BY ns"
            ).fetchall()
        ]
        return {"docs": docs, "logs": logs}
