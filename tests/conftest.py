"""Shared pytest fixtures for the Sense-Aid reproduction test suite."""

from __future__ import annotations

import pytest

from repro.cellular.enodeb import TowerRegistry, grid_towers
from repro.cellular.network import CellularNetwork
from repro.devices.device import SimDevice
from repro.environment.campus import default_campus
from repro.environment.geometry import Point
from repro.environment.mobility import StaticMobility
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


@pytest.fixture
def campus():
    return default_campus()


@pytest.fixture
def registry(campus) -> TowerRegistry:
    return TowerRegistry(grid_towers(campus.width_m, campus.height_m))


@pytest.fixture
def network(sim) -> CellularNetwork:
    return CellularNetwork(sim)


def make_device(
    sim: Simulator,
    device_id: str = "dev-0",
    *,
    position: Point = Point(1275.0, 1350.0),
    **kwargs,
) -> SimDevice:
    """A stationary test device (default position: the CS department)."""
    kwargs.setdefault("mobility", StaticMobility(position))
    return SimDevice(sim, device_id, **kwargs)


@pytest.fixture
def device(sim) -> SimDevice:
    return make_device(sim)
