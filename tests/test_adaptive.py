"""Tests for dynamic (adaptive) tasks — paper §8 ongoing work."""

from __future__ import annotations

import pytest

from repro.core.server import SensedDataPoint
from repro.devices.sensors import SensorType
from repro.serverlib.adaptive import AdaptiveDensityController
from repro.serverlib.appserver import CrowdsensingAppServer
from repro.sim.engine import Simulator
from tests.test_core_server import CENTER, make_setup


def make_controller(sim_devices=6, **kwargs):
    sim = Simulator()
    server, _, _, _ = make_setup(sim, n_devices=sim_devices)
    app = CrowdsensingAppServer(server, "adaptive")
    task_id = app.task(
        SensorType.BAROMETER,
        CENTER,
        1000.0,
        2,
        sampling_period_s=600.0,
        sampling_duration_s=7200.0,
    )
    controller = AdaptiveDensityController(app, task_id, **kwargs)
    return sim, server, app, controller


def feed(controller, values, task_id=None, t=0.0):
    task_id = task_id if task_id is not None else controller.task_id
    for i, value in enumerate(values):
        controller.on_data(
            SensedDataPoint(
                request_id=f"r{i}",
                task_id=task_id,
                sensor_type=SensorType.BAROMETER,
                value=value,
                sensed_at=t + i,
                delivered_at=t + i,
                device_hash="h",
            )
        )


class TestAdaptiveDensity:
    def test_high_variance_raises_density(self):
        sim, server, app, controller = make_controller(window=4)
        feed(controller, [1000.0, 1010.0, 995.0, 1015.0])
        assert controller.current_density() == 3
        assert len(controller.changes) == 1
        assert controller.changes[0].old_density == 2

    def test_low_variance_lowers_density(self):
        sim, server, app, controller = make_controller(window=4, min_density=1)
        app.update_task_param(controller.task_id, spatial_density=4)
        feed(controller, [1013.0, 1013.05, 1013.02, 1013.01])
        assert controller.current_density() == 3

    def test_moderate_variance_holds_steady(self):
        sim, server, app, controller = make_controller(
            window=4, raise_std_threshold=2.0, lower_std_threshold=0.1
        )
        feed(controller, [1013.0, 1014.0, 1013.5, 1012.8])
        assert controller.current_density() == 2
        assert controller.changes == []

    def test_density_clamped_at_max(self):
        sim, server, app, controller = make_controller(window=2, max_density=3)
        for _ in range(5):
            feed(controller, [990.0, 1030.0])
        assert controller.current_density() == 3

    def test_density_clamped_at_min(self):
        sim, server, app, controller = make_controller(window=2, min_density=2)
        for _ in range(5):
            feed(controller, [1013.0, 1013.0])
        assert controller.current_density() == 2

    def test_other_tasks_ignored(self):
        sim, server, app, controller = make_controller(window=2)
        feed(controller, [990.0, 1030.0], task_id=controller.task_id + 999)
        assert controller.current_density() == 2

    def test_window_not_full_no_decision(self):
        sim, server, app, controller = make_controller(window=6)
        feed(controller, [990.0, 1030.0])
        assert controller.observed_std() is None
        assert controller.changes == []

    def test_parameter_validation(self):
        sim, server, app, controller = make_controller()
        with pytest.raises(ValueError):
            AdaptiveDensityController(
                app, controller.task_id, min_density=5, max_density=2
            )
        with pytest.raises(ValueError):
            AdaptiveDensityController(
                app,
                controller.task_id,
                raise_std_threshold=0.1,
                lower_std_threshold=0.5,
            )
        with pytest.raises(ValueError):
            AdaptiveDensityController(app, controller.task_id, window=1)

    def test_end_to_end_with_live_campaign(self):
        """Wire the controller into a live run: the density change must
        reach the scheduler (selection events grow wider)."""
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=6)
        app = CrowdsensingAppServer(server, "adaptive")
        task_id = app.task(
            SensorType.BAROMETER,
            CENTER,
            1000.0,
            2,
            sampling_period_s=600.0,
            sampling_duration_s=7200.0,
        )
        controller = AdaptiveDensityController(
            app,
            task_id,
            window=2,
            raise_std_threshold=0.0001,
            lower_std_threshold=0.00001,
            max_density=4,
        )
        app._on_data = controller.on_data
        sim.run(until=7300.0)
        widths = [len(e.selected) for e in server.selection_log]
        assert widths[0] == 2
        assert max(widths) > 2  # the controller widened the campaign
