"""Tests for the analysis helpers (energy, fairness, trace, tables)."""

from __future__ import annotations

import pytest

from repro.analysis.energy import (
    min_mean_max,
    savings_pct,
    summarize_devices,
    summarize_savings,
)
from repro.analysis.fairness import (
    fairness_report,
    ideal_spread,
    is_fair_rotation,
    jain_index,
    selection_spread,
)
from repro.analysis.tables import format_min_mean_max, format_percent, format_table
from repro.analysis.trace import RadioTraceRecorder
from repro.cellular.packets import TrafficCategory
from repro.cellular.rrc import RRCState
from repro.sim.engine import Simulator
from tests.conftest import make_device


class TestSavings:
    def test_savings_pct(self):
        assert savings_pct(10.0, 100.0) == pytest.approx(90.0)
        assert savings_pct(100.0, 100.0) == 0.0
        assert savings_pct(150.0, 100.0) == pytest.approx(-50.0)

    def test_zero_comparison(self):
        assert savings_pct(5.0, 0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            savings_pct(-1.0, 10.0)

    def test_min_mean_max(self):
        assert min_mean_max([3.0, 1.0, 2.0]) == (1.0, 2.0, 3.0)
        with pytest.raises(ValueError):
            min_mean_max([])


class TestEnergySummary:
    def test_summarize_devices(self):
        sim = Simulator()
        devices = [make_device(sim, f"d{i}") for i in range(3)]
        devices[0].ledger.charge(TrafficCategory.CROWDSENSING, 600.0, "x")
        devices[1].ledger.charge(TrafficCategory.CROWDSENSING, 100.0, "x")
        summary = summarize_devices(devices)
        assert summary.total_j == pytest.approx(700.0)
        assert summary.device_count == 3
        assert summary.mean_per_device_j == pytest.approx(700.0 / 3)
        assert summary.max_per_device_j == pytest.approx(600.0)
        assert summary.devices_over_2pct() == 1

    def test_empty_summary(self):
        summary = summarize_devices([])
        assert summary.total_j == 0.0
        assert summary.mean_per_device_j == 0.0
        assert summary.max_per_device_j == 0.0

    def test_summarize_savings(self):
        sim = Simulator()
        sa = [make_device(sim, "sa")]
        sa[0].ledger.charge(TrafficCategory.CROWDSENSING, 10.0, "x")
        other = [make_device(sim, "o")]
        other[0].ledger.charge(TrafficCategory.CROWDSENSING, 100.0, "x")
        savings = summarize_savings(
            summarize_devices(sa), {"periodic": summarize_devices(other)}
        )
        assert savings["periodic"] == pytest.approx(90.0)


class TestFairness:
    def test_jain_perfectly_fair(self):
        assert jain_index([2, 2, 2, 2]) == pytest.approx(1.0)

    def test_jain_unfair(self):
        assert jain_index([4, 0, 0, 0]) == pytest.approx(0.25)

    def test_jain_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0, 0]) == 1.0

    def test_selection_spread(self):
        assert selection_spread([1, 2, 1]) == (1, 2)
        assert selection_spread([]) == (0, 0)

    def test_ideal_spread_fig9(self):
        """18 selections over 11 devices → each once or twice."""
        assert ideal_spread(18, 11) == (1, 2)
        assert ideal_spread(22, 11) == (2, 2)

    def test_ideal_spread_validation(self):
        with pytest.raises(ValueError):
            ideal_spread(5, 0)

    def test_is_fair_rotation(self):
        counts = {f"d{i}": 2 if i < 7 else 1 for i in range(11)}
        assert is_fair_rotation(counts, 18)
        counts["d0"] = 5
        assert not is_fair_rotation(counts, 18)

    def test_fairness_report(self):
        report = fairness_report({"a": 1, "b": 2})
        assert report["devices"] == 2
        assert report["total_selections"] == 3
        assert report["min_selections"] == 1
        assert report["max_selections"] == 2


class TestTrace:
    def _traced_device(self):
        sim = Simulator()
        device = make_device(sim)
        recorder = RadioTraceRecorder(sim, device.modem)
        return sim, device, recorder

    def test_segments_capture_transitions(self):
        sim, device, recorder = self._traced_device()
        device.modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=30.0)
        states = [s.state for s in recorder.segments(closed_at=30.0)]
        assert states == [
            RRCState.IDLE,
            RRCState.PROMOTING,
            RRCState.ACTIVE,
            RRCState.TAIL,
            RRCState.IDLE,
        ]

    def test_time_in_state_matches_profile(self):
        sim, device, recorder = self._traced_device()
        device.modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=30.0)
        profile = device.modem.profile
        assert recorder.time_in_state(RRCState.TAIL, until=30.0) == pytest.approx(
            profile.tail_s
        )
        assert recorder.time_in_state(
            RRCState.PROMOTING, until=30.0
        ) == pytest.approx(profile.promotion_s)

    def test_tail_segments(self):
        sim, device, recorder = self._traced_device()
        device.modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=30.0)
        tails = recorder.tail_segments(until=30.0)
        assert len(tails) == 1
        assert tails[0].duration == pytest.approx(device.modem.profile.tail_s)

    def test_ascii_render(self):
        sim, device, recorder = self._traced_device()
        device.modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=20.0)
        strip = recorder.render_ascii(until=20.0, resolution_s=1.0)
        assert strip[0] == "P"  # transmission started at t=0
        assert "t" in strip
        assert strip[-1] == "."

    def test_ascii_render_validation(self):
        sim, device, recorder = self._traced_device()
        with pytest.raises(ValueError):
            recorder.render_ascii(until=10.0, resolution_s=0.0)
        with pytest.raises(ValueError):
            recorder.render_ascii(until=10.0, start=20.0)


class TestTables:
    def test_format_table_aligns(self):
        table = format_table(["a", "bb"], [(1, 2.5), (10, 3.25)])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert "2.5" in table
        assert "10" in table

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a"], [(1, 2)])

    def test_title_included(self):
        table = format_table(["a"], [(1,)], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_percent_formats(self):
        assert format_percent(93.25) == "93.2%"
        assert format_min_mean_max(1.0, 2.0, 3.0) == "2.0% (1.0%, 3.0%)"
