"""The streaming accumulators must agree with their batch twins.

Where the accumulation order matches the batch computation's order
(fairness counts, heatmap cells, state-time totals, p95/max/count) the
agreement is exact; the latency *mean* — which the batch computes over
a sorted copy — is compared to float tolerance.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fairness import fairness_report
from repro.analysis.heatmap import SpatialSample, grid_field
from repro.analysis.quality import delivery_latency
from repro.analysis.streaming import (
    ClaimsAccumulator,
    StreamingHeatmap,
    StreamingLatency,
    StreamingMean,
    StreamingSelectionCounts,
    StreamingStateTime,
)
from repro.analysis.truth import discover_truth
from repro.cellular.rrc import RRCState
from repro.core.server import SensedDataPoint
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point


def _point(value: float, *, device="dev", task_id=1, latency=0.5, t=0.0):
    return SensedDataPoint(
        request_id=f"task{task_id}-r0",
        task_id=task_id,
        sensor_type=SensorType.BAROMETER,
        value=value,
        sensed_at=t,
        delivered_at=t + latency,
        device_hash=device,
    )


class TestStreamingSelectionCounts:
    def test_matches_batch_fairness_report(self):
        rng = random.Random(11)
        devices = [f"d{i}" for i in range(7)]
        acc = StreamingSelectionCounts()
        counts = {}
        for _ in range(50):
            selected = rng.sample(devices, rng.randint(1, 3))
            acc.add(selected)
            for device_id in selected:
                counts[device_id] = counts.get(device_id, 0) + 1
        assert acc.counts() == counts
        assert acc.report() == fairness_report(counts)
        assert acc.events == 50

    def test_accepts_stored_event_dicts(self):
        acc = StreamingSelectionCounts()
        acc.add_event({"selected": ["d0", "d1"], "qualified": ["d0", "d1"]})
        assert acc.counts() == {"d0": 1, "d1": 1}


class TestStreamingMean:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            max_size=60,
        )
    )
    def test_bit_identical_to_left_to_right_sum(self, values):
        acc = StreamingMean()
        for value in values:
            acc.add(value)
        if not values:
            assert acc.mean is None
        else:
            assert acc.mean == sum(values) / len(values)  # exact


class TestStreamingLatency:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=-2.0, max_value=500.0,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=0, max_size=120,
        )
    )
    def test_exact_p95_max_count(self, latencies):
        points = [_point(1.0, latency=lat, t=10.0) for lat in latencies]
        batch = delivery_latency(points)
        acc = StreamingLatency()
        for point in points:
            acc.add_point(point)
        stream = acc.stats()
        assert stream.count == batch.count
        assert stream.max_s == batch.max_s  # exact
        assert stream.p95_s == batch.p95_s  # exact, not a sketch
        assert stream.mean_s == pytest.approx(batch.mean_s, rel=1e-12)

    def test_compact_retention(self):
        acc = StreamingLatency()
        for i in range(10_000):
            acc.add(float(i % 311))
        # Exact quantiles force retaining the values, but only as one
        # 8-byte double each — never the readings that carried them.
        assert len(acc._values) == 10_000
        assert acc._values.itemsize == 8
        assert acc._values.typecode == "d"


class TestStreamingHeatmap:
    def test_bit_identical_to_grid_field(self):
        rng = random.Random(3)
        samples = [
            SpatialSample(
                Point(rng.uniform(0, 800), rng.uniform(0, 400)),
                rng.uniform(950, 1050),
            )
            for _ in range(25)
        ]
        acc = StreamingHeatmap(800.0, 400.0, cols=10, rows=5)
        for sample in samples:
            acc.add(sample)
        assert acc.grid() == grid_field(samples, 800.0, 400.0, cols=10, rows=5)

    def test_needs_a_sample(self):
        with pytest.raises(ValueError):
            StreamingHeatmap(100.0, 100.0).grid()


class TestStreamingStateTime:
    def test_matches_segment_summation(self):
        # A hand-built transition history (the recorder idiom without
        # needing a modem): idle → promoting → active → tail → idle.
        acc = StreamingStateTime(RRCState.IDLE, start=0.0)
        history = [
            (RRCState.IDLE, RRCState.PROMOTING, 5.0),
            (RRCState.PROMOTING, RRCState.ACTIVE, 6.5),
            (RRCState.ACTIVE, RRCState.TAIL, 9.0),
            (RRCState.TAIL, RRCState.IDLE, 20.0),
        ]
        for old, new, now in history:
            acc.transition(old, new, now)
        assert acc.time_in_state(RRCState.IDLE, until=30.0) == 5.0 + 10.0
        assert acc.time_in_state(RRCState.PROMOTING, until=30.0) == 1.5
        assert acc.time_in_state(RRCState.ACTIVE, until=30.0) == 2.5
        assert acc.time_in_state(RRCState.TAIL, until=30.0) == 11.0
        totals = acc.totals(until=30.0)
        assert sum(totals.values()) == 30.0
        assert acc.transitions == 4

    def test_open_state_accrues_to_cutoff(self):
        acc = StreamingStateTime(RRCState.ACTIVE, start=2.0)
        assert acc.time_in_state(RRCState.ACTIVE, until=7.0) == 5.0
        assert acc.current_state is RRCState.ACTIVE

    def test_mismatched_transition_rejected(self):
        acc = StreamingStateTime(RRCState.IDLE)
        with pytest.raises(ValueError):
            acc.transition(RRCState.TAIL, RRCState.IDLE, 1.0)


class TestClaimsAccumulator:
    def test_matches_batch_truth_discovery(self):
        rng = random.Random(7)
        claims = {}
        acc = ClaimsAccumulator()
        for source in ["good-1", "good-2", "liar"]:
            for item in range(4):
                value = 1000.0 + item if "good" in source else 1200.0
                value += rng.uniform(-0.5, 0.5)
                claims.setdefault(source, {})[item] = value
                acc.add_claim(source, item, value)
        batch = discover_truth(claims)
        stream = acc.discover()
        assert stream.truths == batch.truths
        assert stream.weights == batch.weights
        assert acc.sources == 3

    def test_add_point_defaults_item_to_task(self):
        acc = ClaimsAccumulator()
        acc.add_point(_point(1013.0, device="hash-a", task_id=9))
        assert acc.claims() == {"hash-a": {9: 1013.0}}
        assert acc.readings == 1
