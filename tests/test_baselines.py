"""Tests for the Periodic and PCS baseline frameworks."""

from __future__ import annotations

import pytest

from repro.baselines.pcs import PCSFramework
from repro.baselines.periodic import PeriodicFramework
from repro.cellular.network import CellularNetwork
from repro.cellular.packets import TrafficCategory
from repro.core.tasks import TaskSpec
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point
from repro.sim.engine import Simulator
from tests.conftest import make_device

CENTER = Point(500.0, 500.0)


def make_spec(**kwargs) -> TaskSpec:
    defaults = dict(
        sensor_type=SensorType.BAROMETER,
        center=CENTER,
        area_radius_m=1000.0,
        spatial_density=2,
        sampling_period_s=600.0,
        sampling_duration_s=1800.0,
    )
    defaults.update(kwargs)
    return TaskSpec(**defaults)


def make_devices(sim, n, positions=None):
    return [
        make_device(sim, f"d{i}", position=positions[i] if positions else CENTER)
        for i in range(n)
    ]


class TestPeriodic:
    def test_every_participant_uploads_every_tick(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        devices = make_devices(sim, 3)
        framework = PeriodicFramework(sim, network, devices)
        framework.add_task(make_spec())
        sim.run(until=1900.0)
        assert framework.stats.requests_issued == 3
        assert framework.stats.uploads == 9
        assert framework.stats.data_points_delivered == 9
        assert len(framework.collector) == 9

    def test_out_of_region_devices_excluded(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        devices = make_devices(
            sim, 3, positions=[CENTER, CENTER, Point(9000.0, 9000.0)]
        )
        framework = PeriodicFramework(sim, network, devices)
        framework.add_task(make_spec(area_radius_m=500.0, sampling_duration_s=600.0))
        sim.run(until=650.0)
        assert framework.stats.participants_per_request == {
            list(framework.stats.participants_per_request)[0]: 2
        }

    def test_every_upload_pays_cold_cost_when_idle(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        devices = make_devices(sim, 1)
        framework = PeriodicFramework(sim, network, devices)
        framework.add_task(make_spec(sampling_duration_s=1800.0))
        sim.run(until=1900.0)
        device = devices[0]
        cold = device.modem.profile.cold_upload_energy_j(600)
        sensor = 0.022
        assert device.crowdsensing_energy_j() == pytest.approx(
            3 * (cold + sensor), rel=0.02
        )

    def test_device_without_sensor_skipped(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        from repro.devices.profiles import profile_by_model

        devices = [
            make_device(sim, "ok", position=CENTER),
            make_device(
                sim, "nobaro", position=CENTER, profile=profile_by_model("Moto E")
            ),
        ]
        framework = PeriodicFramework(sim, network, devices)
        framework.add_task(make_spec(sampling_duration_s=600.0))
        sim.run(until=650.0)
        assert framework.stats.uploads == 1


class TestPCS:
    def test_invalid_accuracy(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PCSFramework(sim, CellularNetwork(sim), [], accuracy=1.5)

    def test_zero_accuracy_equals_periodic_cost(self):
        """With accuracy 0 every upload is a deadline fallback."""
        sim = Simulator(seed=4)
        network = CellularNetwork(sim)
        devices = make_devices(sim, 2)
        framework = PCSFramework(sim, network, devices, accuracy=0.0)
        framework.add_task(make_spec(sampling_duration_s=1800.0))
        sim.run(until=1900.0)
        assert framework.stats.uploads_forced == 6
        assert framework.stats.uploads_piggybacked == 0

    def test_piggybacks_on_real_sessions(self):
        sim = Simulator(seed=4)
        network = CellularNetwork(sim)
        devices = make_devices(sim, 2)
        for device in devices:
            device.traffic.start(initial_delay=60.0)
        framework = PCSFramework(sim, network, devices, accuracy=1.0)
        framework.add_task(make_spec(sampling_duration_s=600.0))
        sim.run(until=650.0)
        assert framework.stats.uploads_piggybacked >= 1
        assert framework.stats.uploads == 2

    def test_no_session_forces_fallback_even_with_good_prediction(self):
        sim = Simulator(seed=4)
        network = CellularNetwork(sim)
        devices = make_devices(sim, 1)  # no traffic started
        framework = PCSFramework(sim, network, devices, accuracy=1.0)
        framework.add_task(make_spec(sampling_duration_s=600.0))
        sim.run(until=650.0)
        assert framework.stats.uploads_forced == 1
        assert framework.stats.data_points_delivered == 1

    def test_oracle_sessions_guarantee_piggyback(self):
        sim = Simulator(seed=4)
        network = CellularNetwork(sim)
        devices = make_devices(sim, 2)
        framework = PCSFramework(
            sim, network, devices, accuracy=1.0, oracle_sessions=True
        )
        framework.add_task(make_spec(sampling_duration_s=1800.0))
        sim.run(until=1900.0)
        assert framework.stats.uploads_piggybacked == 6
        assert framework.stats.uploads_forced == 0

    def test_oracle_piggyback_is_cheap(self):
        sim = Simulator(seed=4)
        network = CellularNetwork(sim)
        devices = make_devices(sim, 1)
        framework = PCSFramework(
            sim, network, devices, accuracy=1.0, oracle_sessions=True
        )
        framework.add_task(make_spec(sampling_duration_s=1800.0))
        sim.run(until=1900.0)
        cold = devices[0].modem.profile.cold_upload_energy_j(600)
        assert devices[0].crowdsensing_energy_j() < cold / 2

    def test_accuracy_monotonically_reduces_energy(self):
        def energy(accuracy):
            sim = Simulator(seed=4)
            network = CellularNetwork(sim)
            devices = make_devices(sim, 3)
            framework = PCSFramework(
                sim, network, devices, accuracy=accuracy, oracle_sessions=True
            )
            framework.add_task(make_spec(sampling_duration_s=3600.0))
            sim.run(until=3700.0)
            return sum(d.crowdsensing_energy_j() for d in devices)

        low, mid, high = energy(0.0), energy(0.5), energy(1.0)
        assert low > mid > high

    def test_all_samples_delivered_regardless_of_accuracy(self):
        """PCS never sacrifices data quality — late predictions fall
        back to a deadline upload."""
        for accuracy in (0.0, 0.5, 1.0):
            sim = Simulator(seed=9)
            network = CellularNetwork(sim)
            devices = make_devices(sim, 2)
            for device in devices:
                device.traffic.start()
            framework = PCSFramework(sim, network, devices, accuracy=accuracy)
            framework.add_task(make_spec(sampling_duration_s=1800.0))
            sim.run(until=1900.0)
            assert framework.stats.data_points_delivered == 6

    def test_pending_count_tracks_obligations(self):
        sim = Simulator(seed=4)
        network = CellularNetwork(sim)
        devices = make_devices(sim, 1)
        framework = PCSFramework(sim, network, devices, accuracy=1.0)
        framework.add_task(make_spec(sampling_duration_s=600.0))
        sim.run(until=10.0)
        assert framework.pending_count("d0") == 1
        sim.run(until=650.0)
        assert framework.pending_count("d0") == 0


class TestFrameworkStats:
    def test_mean_participants(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        devices = make_devices(sim, 4)
        framework = PeriodicFramework(sim, network, devices)
        framework.add_task(make_spec(sampling_duration_s=1200.0))
        sim.run(until=1300.0)
        assert framework.stats.mean_participants() == 4.0

    def test_per_device_energy(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        devices = make_devices(sim, 2)
        framework = PeriodicFramework(sim, network, devices)
        framework.add_task(make_spec(sampling_duration_s=600.0))
        sim.run(until=650.0)
        per_device = framework.per_device_energy_j()
        assert set(per_device) == {"d0", "d1"}
        assert framework.total_crowdsensing_energy_j() == pytest.approx(
            sum(per_device.values())
        )
