"""Tests for the benchmark-regression harness (repro.bench.compare)."""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.compare import (
    ARTIFACT_SCHEMA_VERSION,
    TolerancePolicy,
    compare_dirs,
    flatten_metrics,
    load_artifact,
    update_baselines,
    write_markdown,
)
from repro.cli import main as cli_main

FIXTURES = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "bench_compare"
)


def _write(directory, name, metrics, *, schema=ARTIFACT_SCHEMA_VERSION, sha="abc123"):
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(
            {
                "name": name,
                "schema_version": schema,
                "git_sha": sha,
                "metrics": metrics,
            },
            f,
        )
    return path


@pytest.fixture()
def dirs(tmp_path):
    baseline = tmp_path / "baselines"
    current = tmp_path / "current"
    baseline.mkdir()
    current.mkdir()
    return str(baseline), str(current)


class TestLoading:
    def test_stamped_artifact_round_trips(self, dirs):
        baseline, _ = dirs
        path = _write(baseline, "BENCH_x", {"a": 1.0}, sha="deadbeef")
        artifact = load_artifact(path)
        assert artifact.schema_version == ARTIFACT_SCHEMA_VERSION
        assert artifact.git_sha == "deadbeef"
        assert artifact.metrics == {"a": 1.0}

    def test_legacy_bare_payload_is_schema_v1(self, dirs):
        baseline, _ = dirs
        path = os.path.join(baseline, "BENCH_old.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"throughput": 123.0}, f)
        artifact = load_artifact(path)
        assert artifact.schema_version == 1
        assert artifact.metrics == {"throughput": 123.0}

    def test_flatten_nested_paths(self):
        flat = flatten_metrics({"a": {"b": [1, {"c": 2}]}, "d": "x"})
        assert flat == {"a.b[0]": 1, "a.b[1].c": 2, "d": "x"}


class TestCompare:
    def test_identical_runs_pass(self, dirs):
        baseline, current = dirs
        metrics = {"savings": {"mean": 93.3}, "count": 9}
        _write(baseline, "BENCH_a", metrics)
        _write(current, "BENCH_a", metrics)
        report = compare_dirs(baseline, current)
        assert report.passed
        assert report.artifacts_compared == 1

    def test_within_tolerance_drift_passes(self, dirs):
        baseline, current = dirs
        _write(baseline, "BENCH_a", {"mean": 100.0})
        _write(current, "BENCH_a", {"mean": 103.0})  # 3% < default 5%
        assert compare_dirs(baseline, current).passed

    def test_out_of_tolerance_fails(self, dirs):
        baseline, current = dirs
        _write(baseline, "BENCH_a", {"mean": 100.0})
        _write(current, "BENCH_a", {"mean": 110.0})
        report = compare_dirs(baseline, current)
        assert not report.passed
        assert report.failures[0].path == "mean"

    def test_cross_schema_comparison_refused(self, dirs):
        baseline, current = dirs
        _write(baseline, "BENCH_a", {"mean": 1.0}, schema=ARTIFACT_SCHEMA_VERSION)
        _write(current, "BENCH_a", {"mean": 1.0}, schema=ARTIFACT_SCHEMA_VERSION + 1)
        report = compare_dirs(baseline, current)
        assert not report.passed
        assert any("cross-schema" in p for p in report.problems)

    def test_vanished_metric_fails(self, dirs):
        baseline, current = dirs
        _write(baseline, "BENCH_a", {"mean": 1.0, "gone": 2.0})
        _write(current, "BENCH_a", {"mean": 1.0})
        report = compare_dirs(baseline, current)
        assert not report.passed
        assert any("disappeared" in p for p in report.problems)

    def test_new_metric_is_informational(self, dirs):
        baseline, current = dirs
        _write(baseline, "BENCH_a", {"mean": 1.0})
        _write(current, "BENCH_a", {"mean": 1.0, "extra": 5.0})
        report = compare_dirs(baseline, current)
        assert report.passed
        assert report.counts().get("new") == 1

    def test_missing_artifact_only_fails_when_strict(self, dirs):
        baseline, current = dirs
        _write(baseline, "BENCH_a", {"mean": 1.0})
        _write(baseline, "BENCH_b", {"mean": 2.0})
        _write(current, "BENCH_a", {"mean": 1.0})
        assert compare_dirs(baseline, current).passed
        assert not compare_dirs(baseline, current, strict_missing=True).passed

    def test_empty_baseline_dir_is_a_problem(self, dirs):
        baseline, current = dirs
        assert not compare_dirs(baseline, current).passed

    def test_non_numeric_leaves_require_exact_match(self, dirs):
        baseline, current = dirs
        _write(baseline, "BENCH_a", {"label": "complete"})
        _write(current, "BENCH_a", {"label": "basic"})
        assert not compare_dirs(baseline, current).passed


class TestTolerancePolicy:
    def test_skip_pattern_makes_metric_informational(self, dirs):
        baseline, current = dirs
        _write(baseline, "BENCH_a", {"wall_s": 1.0, "mean": 5.0})
        _write(current, "BENCH_a", {"wall_s": 40.0, "mean": 5.0})
        policy_path = os.path.join(baseline, "tolerances.json")
        with open(policy_path, "w", encoding="utf-8") as f:
            json.dump({"overrides": [{"pattern": "*:wall_s", "skip": True}]}, f)
        report = compare_dirs(baseline, current)  # picks up tolerances.json
        assert report.passed
        assert report.counts()["skipped"] == 1

    def test_abs_override_dominates_near_zero(self):
        policy = TolerancePolicy(
            rel=0.01, overrides=[{"pattern": "*:*.std", "abs": 2.0}]
        )
        rel, abs_tol, skip = policy.resolve("BENCH_a", "savings.std")
        assert (rel, abs_tol, skip) == (0.01, 2.0, False)

    def test_last_matching_override_wins(self):
        policy = TolerancePolicy(
            overrides=[
                {"pattern": "*", "rel": 0.5},
                {"pattern": "BENCH_a:*", "rel": 0.1},
            ]
        )
        assert policy.resolve("BENCH_a", "x")[0] == 0.1
        assert policy.resolve("BENCH_b", "x")[0] == 0.5


class TestCommittedFixture:
    """The committed fixture injects a 22-point savings regression."""

    def test_injected_regression_fails_the_gate(self):
        report = compare_dirs(
            os.path.join(FIXTURES, "baselines"), os.path.join(FIXTURES, "current")
        )
        assert not report.passed
        failing = {d.path for d in report.failures}
        assert failing == {"savings.complete_vs_pcs.mean"}
        # The timing metric drifted wildly but is skipped by policy,
        # and the std drift sits inside its absolute tolerance.
        assert report.counts()["skipped"] == 1

    def test_cli_exits_non_zero_and_writes_markdown(self, tmp_path, capsys):
        md_path = str(tmp_path / "delta.md")
        code = cli_main(
            [
                "bench",
                "compare",
                "--baseline",
                os.path.join(FIXTURES, "baselines"),
                "--current",
                os.path.join(FIXTURES, "current"),
                "--markdown",
                md_path,
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out
        with open(md_path, "r", encoding="utf-8") as f:
            markdown = f.read()
        assert "savings.complete_vs_pcs.mean" in markdown
        assert "| artifact | metric |" in markdown


class TestMarkdownAndUpdate:
    def test_markdown_pass_report_has_breakdown(self, dirs):
        baseline, current = dirs
        _write(baseline, "BENCH_a", {"mean": 1.0})
        _write(current, "BENCH_a", {"mean": 1.0})
        report = compare_dirs(baseline, current)
        markdown = report.markdown()
        assert "PASS" in markdown
        assert "Per-artifact breakdown" in markdown

    def test_write_markdown_github_summary_env(self, dirs, tmp_path, monkeypatch):
        baseline, current = dirs
        _write(baseline, "BENCH_a", {"mean": 1.0})
        _write(current, "BENCH_a", {"mean": 1.0})
        summary_path = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary_path))
        write_markdown(compare_dirs(baseline, current), "GITHUB_STEP_SUMMARY")
        assert "Benchmark regression gate" in summary_path.read_text()

    def test_update_baselines_copies_artifacts(self, dirs):
        baseline, current = dirs
        _write(current, "BENCH_a", {"mean": 2.0})
        _write(current, "BENCH_b", {"mean": 3.0})
        copied = update_baselines(current_dir=current, baseline_dir=baseline)
        assert copied == ["BENCH_a", "BENCH_b"]
        assert load_artifact(os.path.join(baseline, "BENCH_a.json")).metrics == {
            "mean": 2.0
        }

    def test_cli_update_baselines(self, dirs, capsys):
        baseline, current = dirs
        _write(current, "BENCH_a", {"mean": 2.0})
        assert cli_main(
            ["bench", "update-baselines", "--baseline", baseline, "--current", current]
        ) == 0
        assert "updated BENCH_a" in capsys.readouterr().out

    def test_cli_update_baselines_empty_current_errors(self, dirs, capsys):
        baseline, current = dirs
        assert cli_main(
            ["bench", "update-baselines", "--baseline", baseline, "--current", current]
        ) == 2


class TestStampedWriter:
    def test_write_artifact_stamps_schema_and_sha(self, tmp_path, monkeypatch):
        from benchmarks import conftest as bench_conftest

        monkeypatch.setattr(bench_conftest, "ARTIFACT_DIR", str(tmp_path))
        monkeypatch.setenv("GITHUB_SHA", "ci-sha-1234")
        path = bench_conftest.write_artifact("BENCH_t", {"metric": 1.5})
        artifact = load_artifact(path)
        assert artifact.schema_version == ARTIFACT_SCHEMA_VERSION
        assert artifact.git_sha == "ci-sha-1234"
        assert artifact.metrics == {"metric": 1.5}
