"""End-to-end tests of the user-protection hard cutoffs.

The paper: "Sense-Aid server never picks a device more than a certain
number of times, when that device has already expended a certain
amount of energy for crowdsensing tasks, or when its battery is
depleted beyond a level specified by the user."
"""

from __future__ import annotations

import pytest

from repro.core.config import SenseAidConfig, ServerMode
from repro.devices.device import UserPreferences
from repro.sim.engine import Simulator
from tests.conftest import make_device
from tests.test_core_server import CENTER, make_setup, make_spec
from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.clientlib.client import SenseAidClient
from repro.core.server import SenseAidServer


def setup_with_preferences(sim, prefs_list, config=None):
    registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)])
    network = CellularNetwork(sim)
    server = SenseAidServer(
        sim, registry, network, config or SenseAidConfig(mode=ServerMode.COMPLETE)
    )
    devices, clients = [], []
    for i, prefs in enumerate(prefs_list):
        device = make_device(sim, f"d{i}", position=CENTER, preferences=prefs)
        client = SenseAidClient(sim, device, server, network)
        client.register()
        devices.append(device)
        clients.append(client)
    return server, devices, clients


class TestEnergyBudgetCutoff:
    def test_device_stops_being_selected_once_budget_spent(self):
        sim = Simulator()
        # One tiny-budget device, one normal.  Forced uploads cost
        # ~12.8 J, so the 10 J budget is blown after the first one.
        server, devices, _ = setup_with_preferences(
            sim,
            [
                UserPreferences(energy_budget_j=10.0),
                UserPreferences(energy_budget_j=496.0),
            ],
        )
        server.submit_task(
            make_spec(
                spatial_density=1,
                sampling_period_s=600.0,
                sampling_duration_s=4 * 600.0,
            ),
            lambda p: None,
        )
        sim.run(until=4 * 600.0 + 60.0)
        counts = server.selections_per_device()
        # d0 served at most once (its budget died with the first cold
        # upload); d1 carried the rest.
        assert counts.get("d0", 0) <= 1
        assert counts.get("d1", 0) >= 3

    def test_all_budgets_spent_waitlists_requests(self):
        sim = Simulator()
        server, devices, _ = setup_with_preferences(
            sim, [UserPreferences(energy_budget_j=10.0)]
        )
        server.submit_task(
            make_spec(
                spatial_density=1,
                sampling_period_s=600.0,
                sampling_duration_s=3 * 600.0,
            ),
            lambda p: None,
        )
        sim.run(until=3 * 600.0 + 60.0)
        assert server.stats.requests_scheduled <= 2
        assert (
            server.stats.requests_waitlisted + server.stats.requests_expired >= 1
        )

    def test_spent_energy_stays_near_budget(self):
        """A device may finish the upload that crosses the line, but is
        never selected again after."""
        sim = Simulator()
        budget = 10.0
        server, devices, _ = setup_with_preferences(
            sim, [UserPreferences(energy_budget_j=budget)]
        )
        server.submit_task(
            make_spec(
                spatial_density=1,
                sampling_period_s=600.0,
                sampling_duration_s=6 * 600.0,
            ),
            lambda p: None,
        )
        sim.run(until=6 * 600.0 + 60.0)
        cold = devices[0].modem.profile.cold_upload_energy_j(600)
        assert devices[0].crowdsensing_energy_j() <= budget + cold + 1.0


class TestCriticalBatteryCutoff:
    def test_low_battery_device_never_selected(self):
        sim = Simulator()
        registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)])
        network = CellularNetwork(sim)
        server = SenseAidServer(sim, registry, network)
        low = make_device(
            sim,
            "low",
            position=CENTER,
            initial_battery_pct=15.0,
            preferences=UserPreferences(critical_battery_pct=20.0),
        )
        ok = make_device(sim, "ok", position=CENTER)
        SenseAidClient(sim, low, server, network).register()
        SenseAidClient(sim, ok, server, network).register()
        server.submit_task(
            make_spec(
                spatial_density=1,
                sampling_period_s=600.0,
                sampling_duration_s=1800.0,
            ),
            lambda p: None,
        )
        sim.run(until=1900.0)
        counts = server.selections_per_device()
        assert "low" not in counts
        assert counts["ok"] == 3

    def test_user_can_raise_critical_level_mid_run(self):
        sim = Simulator()
        server, devices, clients = setup_with_preferences(
            sim, [UserPreferences(critical_battery_pct=20.0)] * 2
        )
        # Effectively opting out: any battery level is "too low".
        clients[0].update_preferences(critical_battery_pct=100.0)
        server.submit_task(
            make_spec(spatial_density=1, sampling_duration_s=600.0), lambda p: None
        )
        sim.run(until=660.0)
        counts = server.selections_per_device()
        assert "d0" not in counts  # opted out via critical level
        assert counts.get("d1") == 1


class TestSelectionCapCutoff:
    def test_max_selections_per_epoch_enforced(self):
        sim = Simulator()
        config = SenseAidConfig(
            mode=ServerMode.COMPLETE, max_selections_per_epoch=2
        )
        server, devices, _ = setup_with_preferences(
            sim,
            [UserPreferences(), UserPreferences()],
            config=config,
        )
        server.submit_task(
            make_spec(
                spatial_density=1,
                sampling_period_s=600.0,
                sampling_duration_s=6 * 600.0,
            ),
            lambda p: None,
        )
        sim.run(until=6 * 600.0 + 60.0)
        counts = server.selections_per_device()
        assert all(count <= 2 for count in counts.values())
        # 2 devices × cap 2 = 4 schedulable requests; the rest waited.
        assert server.stats.requests_scheduled == 4
