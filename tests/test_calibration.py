"""Round-trip tests for power-profile calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cellular.calibration import (
    calibration_error,
    fit_profile,
    generate_power_trace,
)
from repro.cellular.power import LTE_POWER_PROFILE, THREEG_POWER_PROFILE


class TestTraceGeneration:
    def test_trace_shape_and_range(self):
        trace = generate_power_trace(
            LTE_POWER_PROFILE, [(10.0, 600)], duration_s=40.0, dt_s=0.05
        )
        assert trace.shape == (800, 2)
        assert trace[:, 1].min() == LTE_POWER_PROFILE.idle_mw
        assert trace[:, 1].max() == LTE_POWER_PROFILE.active_mw

    def test_trace_idle_before_send(self):
        trace = generate_power_trace(
            LTE_POWER_PROFILE, [(10.0, 600)], duration_s=40.0
        )
        before = trace[trace[:, 0] < 10.0]
        assert np.all(before[:, 1] == LTE_POWER_PROFILE.idle_mw)

    def test_trace_returns_to_idle(self):
        trace = generate_power_trace(
            LTE_POWER_PROFILE, [(10.0, 600)], duration_s=60.0
        )
        late = trace[trace[:, 0] > 30.0]
        assert np.all(late[:, 1] == LTE_POWER_PROFILE.idle_mw)

    def test_invalid_dt(self):
        with pytest.raises(ValueError):
            generate_power_trace(LTE_POWER_PROFILE, [], 10.0, dt_s=0.0)


class TestFitting:
    @pytest.mark.parametrize("profile", [LTE_POWER_PROFILE, THREEG_POWER_PROFILE])
    def test_round_trip_recovers_parameters(self, profile):
        # Large transfer so every plateau (incl. ACTIVE) is sampled.
        trace = generate_power_trace(
            profile, [(10.0, 500_000)], duration_s=60.0, dt_s=0.02
        )
        fitted = fit_profile(trace, dt_s=0.02)
        errors = calibration_error(profile, fitted)
        assert errors["idle_mw"] < 0.01
        assert errors["tail_mw"] < 0.01
        assert errors["active_mw"] < 0.01
        assert errors["promotion_mw"] < 0.01
        assert errors["tail_s"] < 0.05
        assert errors["promotion_s"] < 0.25  # short plateau, coarse sampling

    def test_fit_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            fit_profile(np.zeros((5, 3)))

    def test_tail_duration_measured(self):
        trace = generate_power_trace(
            LTE_POWER_PROFILE, [(5.0, 500_000)], duration_s=60.0, dt_s=0.02
        )
        fitted = fit_profile(trace, dt_s=0.02)
        assert fitted.tail_s == pytest.approx(LTE_POWER_PROFILE.tail_s, rel=0.05)
