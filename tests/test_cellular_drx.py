"""Tests for the DRX cycle model."""

from __future__ import annotations

import pytest

from repro.cellular.drx import DRXConfig, DRXPhase, LTE_DRX, derive_tail_parameters
from repro.cellular.power import LTE_POWER_PROFILE


class TestDRXPhase:
    def test_duty_cycle(self):
        phase = DRXPhase("p", cycle_ms=100.0, on_ms=25.0, duration_s=1.0,
                         on_power_mw=1000.0, sleep_power_mw=200.0)
        assert phase.duty_cycle == 0.25
        assert phase.average_power_mw() == pytest.approx(0.25 * 1000 + 0.75 * 200)
        assert phase.energy_j() == pytest.approx(phase.average_power_mw() / 1000.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DRXPhase("p", cycle_ms=100.0, on_ms=0.0, duration_s=1.0,
                     on_power_mw=1000.0, sleep_power_mw=200.0)
        with pytest.raises(ValueError):
            DRXPhase("p", cycle_ms=100.0, on_ms=200.0, duration_s=1.0,
                     on_power_mw=1000.0, sleep_power_mw=200.0)
        with pytest.raises(ValueError):
            DRXPhase("p", cycle_ms=100.0, on_ms=50.0, duration_s=1.0,
                     on_power_mw=100.0, sleep_power_mw=200.0)

    def test_always_on_phase(self):
        phase = LTE_DRX.continuous_rx
        assert phase.duty_cycle == 1.0
        assert phase.average_power_mw() == phase.on_power_mw


class TestDerivation:
    def test_flat_tail_parameters_match_profile(self):
        """The flat-tail approximation used everywhere must equal the
        DRX phase structure it abstracts."""
        tail_s, tail_mw = derive_tail_parameters(LTE_DRX)
        assert tail_s == pytest.approx(LTE_POWER_PROFILE.tail_s)
        assert tail_mw == pytest.approx(LTE_POWER_PROFILE.tail_mw, rel=0.005)

    def test_tail_energy_consistent(self):
        drx_energy = LTE_DRX.total_tail_energy_j()
        flat_energy = LTE_POWER_PROFILE.tail_mw / 1000.0 * LTE_POWER_PROFILE.tail_s
        assert drx_energy == pytest.approx(flat_energy, rel=0.005)


class TestPhaseAt:
    def test_phase_sequence(self):
        assert LTE_DRX.phase_at(0.5).name == "continuous_rx"
        assert LTE_DRX.phase_at(1.5).name == "short_drx"
        assert LTE_DRX.phase_at(5.0).name == "long_drx"
        assert LTE_DRX.phase_at(100.0).name == "long_drx"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LTE_DRX.phase_at(-1.0)


class TestPagingDelay:
    def test_zero_during_continuous_rx(self):
        assert LTE_DRX.paging_delay(0.5) == 0.0

    def test_zero_during_on_duration(self):
        # Start of a short-DRX cycle is an on-duration.
        assert LTE_DRX.paging_delay(1.0) == 0.0

    def test_positive_during_sleep(self):
        # Mid short-DRX cycle (after the 45 ms on-duration).
        delay = LTE_DRX.paging_delay(1.0 + 0.060)
        assert delay == pytest.approx(0.040, abs=1e-9)

    def test_bounded_by_cycle(self):
        for t in (1.05, 2.5, 5.0, 9.0, 11.0):
            delay = LTE_DRX.paging_delay(t)
            phase = LTE_DRX.phase_at(t)
            assert 0.0 <= delay <= phase.cycle_ms / 1000.0

    def test_long_drx_sleeps_longer_than_short(self):
        """Deeper into the tail, pages wait longer — the latency cost
        that motivates Sense-Aid's device-initiated control plane."""
        short_worst = LTE_DRX.short_drx.cycle_ms - LTE_DRX.short_drx.on_ms
        long_worst = LTE_DRX.long_drx.cycle_ms - LTE_DRX.long_drx.on_ms
        assert long_worst > short_worst
