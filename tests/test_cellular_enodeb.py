"""Unit tests for eNodeBs and the tower registry."""

from __future__ import annotations

import pytest

from repro.cellular.enodeb import ENodeB, TowerRegistry, grid_towers
from repro.cellular.rrc import RRCState
from repro.cellular.packets import TrafficCategory
from repro.environment.geometry import Point
from repro.sim.engine import Simulator
from tests.conftest import make_device


def two_tower_registry():
    return TowerRegistry(
        [
            ENodeB("west", Point(0.0, 0.0), coverage_radius_m=1000.0),
            ENodeB("east", Point(2000.0, 0.0), coverage_radius_m=1000.0),
        ]
    )


class TestENodeB:
    def test_covers(self):
        tower = ENodeB("t", Point(0.0, 0.0), coverage_radius_m=100.0)
        assert tower.covers(Point(50.0, 0.0))
        assert not tower.covers(Point(101.0, 0.0))


class TestTowerRegistry:
    def test_requires_towers(self):
        with pytest.raises(ValueError):
            TowerRegistry([])

    def test_unique_ids_required(self):
        tower = ENodeB("t", Point(0.0, 0.0))
        with pytest.raises(ValueError):
            TowerRegistry([tower, tower])

    def test_nearest_tower(self):
        registry = two_tower_registry()
        assert registry.nearest_tower(Point(100.0, 0.0)).tower_id == "west"
        assert registry.nearest_tower(Point(1900.0, 0.0)).tower_id == "east"

    def test_tower_lookup(self):
        registry = two_tower_registry()
        assert registry.tower("west").tower_id == "west"
        with pytest.raises(KeyError):
            registry.tower("north")

    def test_towers_covering_region(self):
        registry = two_tower_registry()
        covering = registry.towers_covering(Point(0.0, 0.0), 100.0)
        assert [t.tower_id for t in covering] == ["west"]
        both = registry.towers_covering(Point(1000.0, 0.0), 500.0)
        assert {t.tower_id for t in both} == {"west", "east"}

    def test_attach_and_serving_tower(self):
        sim = Simulator()
        registry = two_tower_registry()
        device = make_device(sim, "d1", position=Point(100.0, 0.0))
        tower = registry.attach_device(device)
        assert tower.tower_id == "west"
        assert registry.serving_tower("d1").tower_id == "west"

    def test_detach(self):
        sim = Simulator()
        registry = two_tower_registry()
        device = make_device(sim, "d1", position=Point(100.0, 0.0))
        registry.attach_device(device)
        registry.detach_device("d1")
        assert registry.device_ids() == []
        with pytest.raises(KeyError):
            registry.serving_tower("d1")

    def test_detach_unknown_is_noop(self):
        two_tower_registry().detach_device("ghost")

    def test_devices_within(self):
        sim = Simulator()
        registry = two_tower_registry()
        near = make_device(sim, "near", position=Point(10.0, 0.0))
        far = make_device(sim, "far", position=Point(1500.0, 0.0))
        registry.attach_device(near)
        registry.attach_device(far)
        assert registry.devices_within(Point(0.0, 0.0), 100.0) == ["near"]
        # Deterministic ordering contract: nearest first, ids break ties.
        assert registry.devices_within(Point(0.0, 0.0), 2000.0) == ["near", "far"]
        assert registry.devices_within_scan(Point(0.0, 0.0), 2000.0) == [
            "near",
            "far",
        ]

    def test_devices_within_negative_radius(self):
        with pytest.raises(ValueError):
            two_tower_registry().devices_within(Point(0.0, 0.0), -1.0)

    def test_radio_state_visibility(self):
        sim = Simulator()
        registry = two_tower_registry()
        device = make_device(sim, "d1", position=Point(0.0, 0.0))
        registry.attach_device(device)
        assert registry.radio_state("d1") is RRCState.IDLE
        device.modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=1.0)
        assert registry.radio_state("d1") in (RRCState.ACTIVE, RRCState.TAIL)

    def test_seconds_since_last_comm_visibility(self):
        sim = Simulator()
        registry = two_tower_registry()
        device = make_device(sim, "d1", position=Point(0.0, 0.0))
        registry.attach_device(device)
        assert registry.seconds_since_last_comm("d1") is None
        device.modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=20.0)
        assert registry.seconds_since_last_comm("d1") > 0

    def test_unknown_device_raises(self):
        registry = two_tower_registry()
        with pytest.raises(KeyError):
            registry.radio_state("ghost")
        with pytest.raises(KeyError):
            registry.device("ghost")

    def test_refresh_attachments_follows_mobility(self):
        sim = Simulator()
        registry = two_tower_registry()

        class Walker:
            device_id = "walker"
            modem = None

            def __init__(self):
                self._pos = Point(100.0, 0.0)

            def position(self):
                return self._pos

        walker = Walker()
        registry.attach_device(walker)
        assert registry.serving_tower("walker").tower_id == "west"
        walker._pos = Point(1900.0, 0.0)
        registry.refresh_attachments()
        assert registry.serving_tower("walker").tower_id == "east"


class TestGridTowers:
    def test_grid_layout(self):
        towers = grid_towers(2000.0, 2000.0, rows=2, cols=2)
        assert len(towers) == 4
        positions = {(t.position.x, t.position.y) for t in towers}
        assert positions == {
            (500.0, 500.0),
            (1500.0, 500.0),
            (500.0, 1500.0),
            (1500.0, 1500.0),
        }

    def test_unique_ids(self):
        towers = grid_towers(1000.0, 1000.0, rows=3, cols=3)
        assert len({t.tower_id for t in towers}) == 9

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            grid_towers(1000.0, 1000.0, rows=0)
