"""Unit tests for the message transport layer."""

from __future__ import annotations

import pytest

from repro.cellular.network import CellularNetwork
from repro.cellular.packets import (
    Message,
    MessageKind,
    TrafficCategory,
    control_ping_message,
    sensor_data_message,
)
from repro.environment.geometry import Point
from repro.sim.engine import Simulator
from tests.conftest import make_device


class TestMessages:
    def test_sensor_data_message_defaults(self):
        msg = sensor_data_message("d1", {"value": 1013.0})
        assert msg.kind is MessageKind.SENSOR_DATA
        assert msg.category is TrafficCategory.CROWDSENSING
        assert msg.size_bytes == 600

    def test_control_ping_message(self):
        msg = control_ping_message("d1", {})
        assert msg.kind is MessageKind.CONTROL_PING
        assert msg.category is TrafficCategory.CONTROL

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(MessageKind.APP_TRAFFIC, "d1", -1)

    def test_message_ids_unique(self):
        a = sensor_data_message("d1", {})
        b = sensor_data_message("d1", {})
        assert a.message_id != b.message_id


class TestRouting:
    def test_crowdsensing_takes_path2(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        msg = sensor_data_message("d1", {})
        assert network.route_for(msg) == CellularNetwork.PATH_SENSE_AID

    def test_background_takes_path1(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        msg = Message(MessageKind.APP_TRAFFIC, "d1", 100)
        assert network.route_for(msg) == CellularNetwork.PATH_DIRECT

    def test_failsafe_path1_when_sense_aid_down(self):
        """The paper's fail-safe: path 1 if the Sense-Aid server crashes."""
        sim = Simulator()
        network = CellularNetwork(sim)
        network.set_sense_aid_path_available(False)
        msg = sensor_data_message("d1", {})
        assert network.route_for(msg) == CellularNetwork.PATH_DIRECT
        network.set_sense_aid_path_available(True)
        assert network.route_for(msg) == CellularNetwork.PATH_SENSE_AID

    def test_path_counters(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        device = make_device(sim, position=Point(0.0, 0.0))
        network.uplink(device, sensor_data_message("d1", {}))
        network.uplink(device, Message(MessageKind.APP_TRAFFIC, "d1", 100))
        assert network.path2_messages == 1
        assert network.path1_messages == 1


class TestUplink:
    def test_delivery_after_radio_and_latency(self):
        sim = Simulator()
        network = CellularNetwork(sim, core_latency_s=0.05)
        device = make_device(sim, position=Point(0.0, 0.0))
        receipts = []
        network.uplink(
            device,
            sensor_data_message(device.device_id, {"value": 1.0}),
            on_delivered=lambda msg, r: receipts.append(r),
        )
        sim.run(until=30.0)
        assert len(receipts) == 1
        receipt = receipts[0]
        profile = device.modem.profile
        expected_radio = profile.promotion_s + profile.transfer_time(600)
        assert receipt.radio_complete_at == pytest.approx(expected_radio)
        assert receipt.delivered_at == pytest.approx(expected_radio + 0.05)
        assert receipt.path == CellularNetwork.PATH_SENSE_AID

    def test_uplink_charges_device_energy(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        device = make_device(sim, position=Point(0.0, 0.0))
        network.uplink(device, sensor_data_message(device.device_id, {}))
        sim.run(until=30.0)
        assert device.crowdsensing_energy_j() > 0

    def test_uplink_without_callback(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        device = make_device(sim, position=Point(0.0, 0.0))
        network.uplink(device, sensor_data_message(device.device_id, {}))
        sim.run(until=30.0)  # must not raise

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            CellularNetwork(Simulator(), core_latency_s=-0.1)


class TestDownlink:
    def test_downlink_wakes_idle_radio(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        device = make_device(sim, position=Point(0.0, 0.0))
        delivered = []
        network.downlink(
            device,
            Message(
                MessageKind.TASK_ASSIGNMENT,
                "server",
                128,
                category=TrafficCategory.CROWDSENSING,
            ),
            on_delivered=lambda msg, r: delivered.append(r),
        )
        sim.run(until=30.0)
        assert len(delivered) == 1
        assert device.modem.promotions == 1

    def test_downlink_sets_created_at(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        device = make_device(sim, position=Point(0.0, 0.0))
        msg = Message(MessageKind.TASK_ASSIGNMENT, "server", 128)
        sim.run(until=5.0)
        network.downlink(device, msg)
        assert msg.created_at == 5.0
