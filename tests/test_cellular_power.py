"""Unit tests for radio power profiles."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cellular.power import (
    LTE_POWER_PROFILE,
    THREEG_POWER_PROFILE,
    RadioPowerProfile,
    profile_by_name,
)


class TestProfileValidation:
    def test_builtin_profiles_valid(self):
        assert LTE_POWER_PROFILE.name == "LTE"
        assert THREEG_POWER_PROFILE.name == "3G"

    def test_idle_must_be_below_tail(self):
        with pytest.raises(ValueError):
            dataclasses.replace(LTE_POWER_PROFILE, idle_mw=2000.0)

    def test_tail_must_not_exceed_active(self):
        with pytest.raises(ValueError):
            dataclasses.replace(LTE_POWER_PROFILE, tail_mw=5000.0)

    def test_positive_fields_enforced(self):
        with pytest.raises(ValueError):
            dataclasses.replace(LTE_POWER_PROFILE, promotion_s=0.0)


class TestTransferTime:
    def test_floor_applies_to_small_transfers(self):
        assert LTE_POWER_PROFILE.transfer_time(600) == pytest.approx(
            LTE_POWER_PROFILE.min_transfer_s
        )

    def test_large_transfer_scales_with_rate(self):
        size = 10_000_000
        expected = size * 8.0 / LTE_POWER_PROFILE.uplink_bps
        assert LTE_POWER_PROFILE.transfer_time(size) == pytest.approx(expected)

    def test_downlink_uses_downlink_rate(self):
        size = 10_000_000
        up = LTE_POWER_PROFILE.transfer_time(size, uplink=True)
        down = LTE_POWER_PROFILE.transfer_time(size, uplink=False)
        assert down < up

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            LTE_POWER_PROFILE.transfer_time(-1)


class TestEnergyHelpers:
    def test_promotion_energy(self):
        p = LTE_POWER_PROFILE
        expected = (p.promotion_mw - p.idle_mw) / 1000.0 * p.promotion_s
        assert p.promotion_energy_j() == pytest.approx(expected)

    def test_tail_energy_default_full_tail(self):
        p = LTE_POWER_PROFILE
        expected = (p.tail_mw - p.idle_mw) / 1000.0 * p.tail_s
        assert p.tail_energy_j() == pytest.approx(expected)

    def test_tail_energy_partial(self):
        p = LTE_POWER_PROFILE
        assert p.tail_energy_j(2.0) == pytest.approx(
            (p.tail_mw - p.idle_mw) / 1000.0 * 2.0
        )

    def test_tail_energy_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            LTE_POWER_PROFILE.tail_energy_j(-1.0)

    def test_active_energy_over_idle_vs_tail(self):
        p = LTE_POWER_PROFILE
        over_idle = p.active_energy_j(1.0)
        over_tail = p.active_energy_j(1.0, over_tail=True)
        assert over_idle > over_tail > 0

    def test_cold_upload_energy_decomposes(self):
        p = LTE_POWER_PROFILE
        transfer = p.transfer_time(600)
        expected = (
            p.promotion_energy_j()
            + p.active_energy_j(transfer)
            + p.tail_energy_j()
        )
        assert p.cold_upload_energy_j(600) == pytest.approx(expected)

    def test_cold_upload_dominated_by_tail(self):
        """The paper's key observation: the tail dwarfs the transfer."""
        p = LTE_POWER_PROFILE
        assert p.tail_energy_j() > 0.8 * p.cold_upload_energy_j(600)

    def test_lte_cold_upload_an_order_of_magnitude_over_piggyback(self):
        p = LTE_POWER_PROFILE
        piggyback = p.active_energy_j(p.transfer_time(600))
        assert p.cold_upload_energy_j(600) > 50 * piggyback


class TestProfileLookup:
    def test_lookup(self):
        assert profile_by_name("LTE") is LTE_POWER_PROFILE
        assert profile_by_name("3G") is THREEG_POWER_PROFILE

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            profile_by_name("5G")

    def test_3g_cheaper_promotion_but_slower(self):
        assert THREEG_POWER_PROFILE.promotion_mw < LTE_POWER_PROFILE.promotion_mw
        assert THREEG_POWER_PROFILE.uplink_bps < LTE_POWER_PROFILE.uplink_bps

    def test_lte_cold_upload_costs_more_than_3g(self):
        """Figure 2's observation: LTE > 3G per upload."""
        assert LTE_POWER_PROFILE.cold_upload_energy_j(
            600
        ) > THREEG_POWER_PROFILE.cold_upload_energy_j(600)
