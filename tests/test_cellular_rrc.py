"""Unit tests for the RRC state machine and its energy attribution.

These are the most important tests in the suite: every experimental
result rests on this model behaving exactly as specified.
"""

from __future__ import annotations

import pytest

from repro.cellular.packets import TrafficCategory
from repro.cellular.power import LTE_POWER_PROFILE
from repro.cellular.rrc import RadioModem, RRCState, TailPolicy
from repro.sim.engine import Simulator

P = LTE_POWER_PROFILE


def make_modem(sim, policy=TailPolicy.RESET):
    modem = RadioModem(sim, P, "m0", policy)
    charges = []
    modem.add_energy_listener(
        lambda cat, joules, reason: charges.append((cat, joules, reason))
    )
    return modem, charges


def total_charged(charges, category=None):
    return sum(
        j for cat, j, _ in charges if category is None or cat is category
    )


class TestColdUpload:
    def test_state_sequence(self):
        sim = Simulator()
        modem, _ = make_modem(sim)
        states = []
        modem.add_state_listener(lambda old, new: states.append(new))
        modem.transmit(600, TrafficCategory.CROWDSENSING)
        sim.run(until=60.0)
        assert states == [
            RRCState.PROMOTING,
            RRCState.ACTIVE,
            RRCState.TAIL,
            RRCState.IDLE,
        ]

    def test_cold_upload_energy_matches_closed_form(self):
        sim = Simulator()
        modem, charges = make_modem(sim)
        modem.transmit(600, TrafficCategory.CROWDSENSING)
        sim.run(until=60.0)
        assert total_charged(charges) == pytest.approx(P.cold_upload_energy_j(600))

    def test_timing_of_transitions(self):
        sim = Simulator()
        modem, _ = make_modem(sim)
        modem.transmit(600, TrafficCategory.BACKGROUND)
        transfer = P.transfer_time(600)
        sim.run(until=P.promotion_s + transfer / 2)
        assert modem.state is RRCState.ACTIVE
        sim.run(until=P.promotion_s + transfer + 1.0)
        assert modem.state is RRCState.TAIL
        sim.run(until=P.promotion_s + transfer + P.tail_s + 0.1)
        assert modem.state is RRCState.IDLE

    def test_promotion_counted(self):
        sim = Simulator()
        modem, _ = make_modem(sim)
        modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=60.0)
        modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=120.0)
        assert modem.promotions == 2
        assert modem.transfers == 2


class TestTailUpload:
    def _into_tail(self, sim, modem):
        modem.transmit(10_000, TrafficCategory.BACKGROUND)
        sim.run(until=5.0)
        assert modem.state is RRCState.TAIL

    def test_reset_extends_tail(self):
        sim = Simulator()
        modem, _ = make_modem(sim, TailPolicy.RESET)
        self._into_tail(sim, modem)
        t_upload = sim.now
        modem.transmit(600, TrafficCategory.CROWDSENSING)
        transfer = P.transfer_time(600)
        # After the reset the radio must stay connected a full tail
        # beyond the transfer end.
        sim.run(until=t_upload + transfer + P.tail_s - 0.5)
        assert modem.state is RRCState.TAIL
        sim.run(until=t_upload + transfer + P.tail_s + 0.5)
        assert modem.state is RRCState.IDLE

    def test_no_reset_preserves_tail_deadline(self):
        sim = Simulator()
        modem, _ = make_modem(sim, TailPolicy.NO_RESET)
        modem.transmit(10_000, TrafficCategory.BACKGROUND)
        sim.run(until=5.0)
        original_deadline = sim.now + modem.tail_remaining()
        modem.transmit(600, TrafficCategory.CROWDSENSING)
        sim.run(until=original_deadline - 0.1)
        assert modem.state is RRCState.TAIL
        sim.run(until=original_deadline + 0.1)
        assert modem.state is RRCState.IDLE

    def test_reset_energy_is_transfer_plus_extension(self):
        sim = Simulator()
        modem, charges = make_modem(sim, TailPolicy.RESET)
        self._into_tail(sim, modem)
        remaining = modem.tail_remaining()
        charges.clear()
        modem.transmit(600, TrafficCategory.CROWDSENSING)
        sim.run(until=60.0)
        transfer = P.transfer_time(600)
        expected = P.active_energy_j(transfer, over_tail=True) + P.tail_energy_j(
            transfer + P.tail_s - remaining
        )
        assert total_charged(charges, TrafficCategory.CROWDSENSING) == pytest.approx(
            expected
        )

    def test_no_reset_energy_is_transfer_only(self):
        sim = Simulator()
        modem, charges = make_modem(sim, TailPolicy.NO_RESET)
        self._into_tail(sim, modem)
        charges.clear()
        modem.transmit(600, TrafficCategory.CROWDSENSING)
        sim.run(until=60.0)
        transfer = P.transfer_time(600)
        expected = P.active_energy_j(transfer, over_tail=True)
        assert total_charged(charges, TrafficCategory.CROWDSENSING) == pytest.approx(
            expected
        )

    def test_no_reset_costs_far_less_than_cold(self):
        sim = Simulator()
        modem, charges = make_modem(sim, TailPolicy.NO_RESET)
        self._into_tail(sim, modem)
        charges.clear()
        modem.transmit(600, TrafficCategory.CROWDSENSING)
        sim.run(until=60.0)
        upload = total_charged(charges, TrafficCategory.CROWDSENSING)
        assert upload < P.cold_upload_energy_j(600) / 100.0

    def test_background_always_resets_even_under_no_reset_policy(self):
        sim = Simulator()
        modem, _ = make_modem(sim, TailPolicy.NO_RESET)
        self._into_tail(sim, modem)
        t = sim.now
        modem.transmit(600, TrafficCategory.BACKGROUND)
        transfer = P.transfer_time(600)
        sim.run(until=t + transfer + P.tail_s - 0.5)
        assert modem.state is RRCState.TAIL


class TestPiggyback:
    def test_transfer_during_active_extends_active(self):
        sim = Simulator()
        modem, charges = make_modem(sim)
        modem.transmit(2_000_000, TrafficCategory.BACKGROUND)  # 8s transfer
        sim.run(until=P.promotion_s + 1.0)
        assert modem.state is RRCState.ACTIVE
        charges.clear()
        modem.transmit(600, TrafficCategory.CROWDSENSING)
        sim.run(until=60.0)
        transfer = P.transfer_time(600)
        assert total_charged(charges, TrafficCategory.CROWDSENSING) == pytest.approx(
            P.active_energy_j(transfer)
        )

    def test_transfer_during_promotion_queues(self):
        sim = Simulator()
        modem, _ = make_modem(sim)
        modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=P.promotion_s / 2)
        assert modem.state is RRCState.PROMOTING
        completion = modem.transmit(600, TrafficCategory.CROWDSENSING)
        expected = P.promotion_s + 2 * P.transfer_time(600)
        assert completion == pytest.approx(expected)
        assert modem.promotions == 1


class TestIntrospection:
    def test_tail_remaining_zero_when_not_in_tail(self):
        sim = Simulator()
        modem, _ = make_modem(sim)
        assert modem.tail_remaining() == 0.0

    def test_tail_remaining_decreases(self):
        sim = Simulator()
        modem, _ = make_modem(sim)
        modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=P.promotion_s + P.transfer_time(600) + 1.0)
        first = modem.tail_remaining()
        sim.run(until=sim.now + 2.0)
        assert modem.tail_remaining() == pytest.approx(first - 2.0)

    def test_seconds_since_last_comm(self):
        sim = Simulator()
        modem, _ = make_modem(sim)
        assert modem.seconds_since_last_comm() is None
        modem.transmit(600, TrafficCategory.BACKGROUND)
        end = P.promotion_s + P.transfer_time(600)
        sim.run(until=end + 5.0)
        assert modem.seconds_since_last_comm() == pytest.approx(5.0)

    def test_is_connected(self):
        sim = Simulator()
        modem, _ = make_modem(sim)
        assert not modem.is_connected
        modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=2.0)
        assert modem.is_connected

    def test_on_complete_callback_fires_at_transfer_end(self):
        sim = Simulator()
        modem, _ = make_modem(sim)
        done = []
        modem.transmit(
            600, TrafficCategory.BACKGROUND, on_complete=lambda: done.append(sim.now)
        )
        sim.run(until=60.0)
        assert done == [pytest.approx(P.promotion_s + P.transfer_time(600))]


class TestTotalEnergyConsistency:
    def test_residency_energy_at_least_marginal_charges(self):
        """Total (residency-integrated) radio energy must be >= the sum
        of marginal attributions, since the idle baseline is extra."""
        sim = Simulator()
        modem, charges = make_modem(sim)
        modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=30.0)
        modem.transmit(600, TrafficCategory.CROWDSENSING)
        sim.run(until=90.0)
        assert modem.total_energy_j() >= total_charged(charges)

    def test_residency_sums_to_elapsed_time(self):
        sim = Simulator()
        modem, _ = make_modem(sim)
        modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=77.0)
        assert sum(modem.state_residency().values()) == pytest.approx(77.0)
