"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import (
    ALIASES,
    RUN_ORDER,
    available_experiments,
    build_parser,
    main,
    run_experiment,
)


class TestResolution:
    def test_all_run_order_names_resolve(self):
        for name in RUN_ORDER:
            # resolution must not raise
            parser_name = name
            assert parser_name in available_experiments()

    def test_aliases_point_at_real_experiments(self):
        for alias, target in ALIASES.items():
            assert target in RUN_ORDER

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in RUN_ORDER:
            assert name in out

    def test_run_fig1(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "109" in out

    def test_run_fig6(self, capsys):
        assert main(["run", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out

    def test_run_alias(self, capsys):
        assert main(["run", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out

    def test_run_unknown_fails(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_seed_flag_changes_results(self, capsys):
        main(["run", "fig9", "--seed", "7"])
        first = capsys.readouterr().out
        main(["run", "fig9", "--seed", "8"])
        second = capsys.readouterr().out
        assert first != second

    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])


class TestSoakCommand:
    def test_clean_soak_exits_zero(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert (
            main(
                [
                    "soak",
                    "--seed",
                    "7",
                    "--episodes",
                    "1",
                    "--tier",
                    "light",
                    "--no-replay-check",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "pass rate 100%" in out
        assert "episode 0" in out

    def test_failing_soak_writes_reproducer_and_replays(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        artifact_dir = tmp_path / "failures"
        assert (
            main(
                [
                    "soak",
                    "--seed",
                    "7",
                    "--episodes",
                    "1",
                    "--no-replay-check",
                    "--planted-bug",
                    "lost_ack",
                    "--artifact-dir",
                    str(artifact_dir),
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "ACKED_UPLOAD_LOST" in out
        assert "shrunk" in out
        reproducers = list(artifact_dir.glob("*.json"))
        assert len(reproducers) == 1
        # The shrunken reproducer still fails under --replay.
        assert main(["soak", "--replay", str(reproducers[0])]) == 1
        replay_out = capsys.readouterr().out
        assert "VIOLATION ACKED_UPLOAD_LOST" in replay_out

    def test_replay_of_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["soak", "--replay", str(tmp_path / "nope.json")]) == 2
        err = capsys.readouterr().err
        assert "cannot load reproducer" in err

    def test_soak_rejects_unknown_tier(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["soak", "--tier", "apocalyptic"])


class TestServiceCommands:
    def test_loadgen_closed_loop_reports(self, capsys):
        assert main(["loadgen", "--requests", "40", "--mode", "closed"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        report = payload["report"]
        assert report["mode"] == "closed"
        assert report["n_requests"] == 40
        assert report["ok"] + report["shed"] + report["failed"] == 40
        assert payload["service"]["lifecycle"]["created"] >= 40
        assert payload["service"]["lifecycle"]["open"] == 0

    def test_loadgen_trace_is_seed_deterministic(self, capsys):
        import json

        sigs = []
        for _ in range(2):
            assert main(
                ["loadgen", "--requests", "25", "--mode", "closed", "--seed", "3"]
            ) == 0
            sigs.append(json.loads(capsys.readouterr().out)["report"]["trace_sig"])
        assert sigs[0] == sigs[1]

    def test_serve_roundtrips_json_lines(self, capsys, monkeypatch):
        import io
        import json
        import sys as _sys

        lines = "\n".join(
            [
                json.dumps({"kind": "create_task", "payload": {"slot": 0}}),
                json.dumps(
                    {"kind": "deliver_data", "payload": {"slot": 0, "value": 1011.0}}
                ),
                json.dumps({"kind": "query_data", "payload": {"slot": 0}}),
                "not json at all",
            ]
        )
        monkeypatch.setattr(_sys, "stdin", io.StringIO(lines + "\n"))
        assert main(["serve"]) == 0
        captured = capsys.readouterr()
        responses = [json.loads(line) for line in captured.out.splitlines() if line]
        assert len(responses) == 4
        rejected = [r for r in responses if r.get("status") == "rejected"]
        assert len(rejected) == 1  # the malformed line
        served = [r for r in responses if r.get("status") == "ok"]
        assert len(served) == 3
        query = next(r for r in served if r["kind"] == "query_data")
        assert query["request_id"].startswith("r")
        scorecard = json.loads(captured.err)
        assert scorecard["lifecycle"]["created"] == 3
        assert scorecard["lifecycle"]["done"] == 3


class TestStorageCheckCommand:
    def test_memory_backend_passes(self, capsys):
        assert main(["storage", "check", "--spec", "memory"]) == 0
        assert "passed" in capsys.readouterr().out

    def test_sqlite_backend_passes(self, capsys):
        assert main(["storage", "check", "--spec", "sqlite"]) == 0
        assert "passed" in capsys.readouterr().out

    def test_env_spec_is_the_default(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DATASTORE", "sqlite")
        assert main(["storage", "check"]) == 0
        assert "'sqlite'" in capsys.readouterr().out

    def test_bad_spec_exits_2(self, capsys):
        assert main(["storage", "check", "--spec", "bogus"]) == 2
        assert "bad datastore spec" in capsys.readouterr().err
