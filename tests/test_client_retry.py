"""Tests for client upload retries, acks, backoff, degraded mode, and
the retry/idempotency policies in the config layer."""

from __future__ import annotations

import pytest

from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.cellular.packets import TrafficCategory
from repro.clientlib.client import SenseAidClient
from repro.core.config import (
    DegradedModePolicy,
    RetryPolicy,
    SenseAidConfig,
    ServerMode,
)
from repro.core.server import SenseAidServer
from repro.faults import FaultInjector, FaultPlan, GilbertElliott, reset_global_ids
from repro.sim.engine import Simulator
from repro.sim.simlog import structured_log
from tests.conftest import make_device
from tests.test_core_server import CENTER, make_spec

RETRY = RetryPolicy(
    max_attempts=4,
    ack_timeout_s=20.0,
    backoff_base_s=10.0,
    backoff_multiplier=2.0,
    jitter_fraction=0.0,
    tail_wait_max_s=30.0,
)


def retry_setup(
    sim,
    n_devices=2,
    *,
    retry=RETRY,
    degraded=None,
    plan=None,
    loss_model=None,
    duplicate_probability=0.0,
    config=None,
):
    registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)])
    network = CellularNetwork(sim)
    server = SenseAidServer(
        sim,
        registry,
        network,
        config or SenseAidConfig(mode=ServerMode.COMPLETE, deadline_grace_s=60.0),
    )
    injector = None
    if plan is not None or loss_model is not None or duplicate_probability:
        injector = FaultInjector(
            sim,
            network,
            registry,
            server=server,
            plan=plan,
            loss_model=loss_model,
            duplicate_probability=duplicate_probability,
        )
    devices, clients = [], []
    for i in range(n_devices):
        device = make_device(sim, f"d{i}", position=CENTER)
        client = SenseAidClient(
            sim,
            device,
            server,
            network,
            retry_policy=retry,
            degraded_policy=degraded,
        )
        client.register()
        if injector is not None:
            injector.adopt_client(client)
        devices.append(device)
        clients.append(client)
    return server, network, injector, devices, clients


class TestRetryPolicyConfig:
    def test_defaults_valid(self):
        RetryPolicy()
        DegradedModePolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"ack_timeout_s": 0.0},
            {"backoff_base_s": -1.0},
            {"backoff_multiplier": 0.5},
            {"backoff_max_s": 0.0},
            {"jitter_fraction": 1.0},
            {"tail_wait_max_s": -1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_schedule(self):
        policy = RetryPolicy(
            backoff_base_s=10.0, backoff_multiplier=2.0, backoff_max_s=35.0
        )
        assert policy.backoff_s(1) == 10.0
        assert policy.backoff_s(2) == 20.0
        assert policy.backoff_s(3) == 35.0  # capped
        with pytest.raises(ValueError):
            policy.backoff_s(0)

    def test_degraded_period_validated(self):
        with pytest.raises(ValueError):
            DegradedModePolicy(period_s=0.0)


class TestRetryHintClamps:
    """Satellite: hostile or buggy Retry-After hints and pathological
    backoff parameters must not wedge or overflow the retry schedule."""

    POLICY = RetryPolicy(
        backoff_base_s=10.0, backoff_multiplier=2.0, backoff_max_s=60.0
    )

    @pytest.mark.parametrize(
        "hint", [0.0, -1.0, -1e18, float("nan"), float("-inf"), None, "soon"]
    )
    def test_useless_hints_fall_back_to_backoff(self, hint):
        # A zero, negative, non-finite, or non-numeric hint is treated
        # as absent: the client's own backoff schedule governs.
        assert self.POLICY.shed_delay_s(1, hint) == 10.0
        assert self.POLICY.shed_delay_s(3, hint) == 40.0

    def test_honest_hint_wins_when_longer(self):
        assert self.POLICY.shed_delay_s(1, 25.0) == 25.0

    def test_backoff_wins_when_hint_shorter(self):
        assert self.POLICY.shed_delay_s(3, 25.0) == 40.0

    def test_huge_hint_clamped_to_cap(self):
        assert self.POLICY.shed_delay_s(1, 1e18) == self.POLICY.retry_after_cap_s
        assert self.POLICY.shed_delay_s(1, float("inf")) == 10.0  # non-finite

    def test_cap_is_configurable_and_validated(self):
        policy = RetryPolicy(
            backoff_base_s=10.0,
            backoff_multiplier=2.0,
            backoff_max_s=60.0,
            retry_after_cap_s=120.0,
        )
        assert policy.shed_delay_s(1, 1e6) == 120.0
        for bad in (0.0, -5.0, float("nan"), float("inf"), True, "900"):
            with pytest.raises(ValueError):
                RetryPolicy(retry_after_cap_s=bad)

    def test_huge_attempt_numbers_do_not_overflow(self):
        # 2.0 ** 10_000 would raise OverflowError if evaluated naively.
        assert self.POLICY.backoff_s(10_001) == 60.0
        assert self.POLICY.shed_delay_s(10_001, 0.0) == 60.0

    def test_extreme_multiplier_saturates_at_cap(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, backoff_multiplier=1e300, backoff_max_s=30.0
        )
        assert policy.backoff_s(1) == 1.0
        for attempt in (2, 3, 50):
            assert policy.backoff_s(attempt) == 30.0

    def test_multiplier_of_one_is_flat(self):
        policy = RetryPolicy(
            backoff_base_s=7.0, backoff_multiplier=1.0, backoff_max_s=60.0
        )
        assert [policy.backoff_s(a) for a in (1, 2, 9999)] == [7.0, 7.0, 7.0]

    def test_base_at_or_above_max_pins_to_max(self):
        policy = RetryPolicy(
            backoff_base_s=90.0, backoff_multiplier=2.0, backoff_max_s=60.0
        )
        assert policy.backoff_s(1) == 60.0
        assert policy.backoff_s(100) == 60.0


class TestReassignmentMode:
    """Satellite: reassignment off is an explicit, documented mode."""

    def test_none_means_disabled(self):
        config = SenseAidConfig()
        assert config.reassign_margin_s is None
        assert not config.reassignment_enabled

    def test_positive_margin_enables(self):
        config = SenseAidConfig(deadline_grace_s=240.0, reassign_margin_s=120.0)
        assert config.reassignment_enabled

    def test_zero_margin_rejected_with_pointer_to_none(self):
        with pytest.raises(ValueError, match="pass None"):
            SenseAidConfig(reassign_margin_s=0.0)

    def test_bool_and_garbage_rejected(self):
        with pytest.raises(TypeError):
            SenseAidConfig(reassign_margin_s=True)
        with pytest.raises(TypeError):
            SenseAidConfig(reassign_margin_s="120")


class TestAcksAndRetries:
    def test_clean_network_acks_without_retries(self):
        sim = Simulator(seed=1)
        server, _, _, _, clients = retry_setup(sim, n_devices=2)
        server.submit_task(
            make_spec(spatial_density=2, sampling_duration_s=600.0), lambda p: None
        )
        sim.run(until=800.0)
        total_acked = sum(c.stats.uploads_acked for c in clients)
        total_retried = sum(c.stats.uploads_retried for c in clients)
        assert total_acked == 2
        assert total_retried == 0
        assert all(c.inflight_count == 0 for c in clients)
        assert server.stats.requests_satisfied == 1
        assert server.stats.duplicate_uploads == 0

    def test_retry_recovers_lost_upload(self):
        """Total loss for the first 10 minutes, then a clean network:
        without retries the request fails, with them it completes."""

        def satisfied(retry):
            sim = Simulator(seed=1)
            plan = FaultPlan().set_loss_model(
                0.0, GilbertElliott(p_good_to_bad=1.0, p_bad_to_good=0.0, loss_bad=1.0)
            ).clear_loss_model(600.0)
            server, _, _, _, _ = retry_setup(
                sim,
                n_devices=2,
                retry=retry,
                plan=plan,
                config=SenseAidConfig(
                    mode=ServerMode.COMPLETE,
                    deadline_grace_s=60.0,
                    one_shot_deadline_s=300.0,
                ),
            )
            server.submit_task(
                make_spec(
                    spatial_density=2,
                    sampling_period_s=None,
                    sampling_duration_s=None,
                ),
                lambda p: None,
            )
            sim.run(until=3600.0)
            server.shutdown()
            return server.stats.requests_satisfied

        patient = RetryPolicy(
            max_attempts=8,
            ack_timeout_s=20.0,
            backoff_base_s=30.0,
            backoff_multiplier=2.0,
            jitter_fraction=0.0,
            tail_wait_max_s=30.0,
        )
        assert satisfied(retry=None) == 0
        assert satisfied(retry=patient) == 1

    def test_abandons_after_max_attempts(self):
        sim = Simulator(seed=1)
        server, _, _, _, clients = retry_setup(
            sim,
            n_devices=1,
            loss_model=GilbertElliott(
                p_good_to_bad=1.0, p_bad_to_good=0.0, loss_bad=1.0
            ),
            config=SenseAidConfig(
                mode=ServerMode.COMPLETE,
                deadline_grace_s=60.0,
                one_shot_deadline_s=120.0,
            ),
        )
        server.submit_task(
            make_spec(
                spatial_density=1, sampling_period_s=None, sampling_duration_s=None
            ),
            lambda p: None,
        )
        sim.run(until=4000.0)
        client = clients[0]
        assert client.stats.uploads_abandoned == 1
        assert client.stats.uploads_retried == RETRY.max_attempts - 1
        assert client.inflight_count == 0
        assert server.stats.data_points == 0
        abandoned = structured_log(sim).records(kind="upload_abandoned")
        assert len(abandoned) == 1
        assert abandoned[0].fields["attempts"] == RETRY.max_attempts

    def test_duplicates_acked_but_counted_once(self):
        sim = Simulator(seed=1)
        received = []
        server, _, _, _, clients = retry_setup(
            sim, n_devices=1, duplicate_probability=1.0
        )
        server.submit_task(
            make_spec(spatial_density=1, sampling_duration_s=600.0),
            received.append,
        )
        sim.run(until=900.0)
        assert server.stats.data_points == 1
        assert server.stats.duplicate_uploads >= 1
        assert len(received) == 1  # the application saw exactly one point
        assert clients[0].stats.uploads_acked == 1
        assert clients[0].inflight_count == 0
        dedups = structured_log(sim).records(kind="dedup")
        assert len(dedups) == server.stats.duplicate_uploads

    def test_retry_reuses_reading_and_upload_id(self):
        """Retransmissions are idempotent replicas: same upload_id, same
        value, bumped attempt counter."""
        sim = Simulator(seed=1)
        seen = []
        server, network, _, _, clients = retry_setup(
            sim,
            n_devices=1,
            retry=RetryPolicy(
                max_attempts=8,
                ack_timeout_s=20.0,
                backoff_base_s=30.0,
                backoff_multiplier=2.0,
                jitter_fraction=0.0,
                tail_wait_max_s=30.0,
            ),
            plan=FaultPlan()
            .set_loss_model(
                0.0, GilbertElliott(p_good_to_bad=1.0, p_bad_to_good=0.0, loss_bad=1.0)
            )
            .clear_loss_model(500.0),
            config=SenseAidConfig(
                mode=ServerMode.COMPLETE,
                deadline_grace_s=60.0,
                one_shot_deadline_s=240.0,
            ),
        )
        original_receive = server.receive_sensed_data

        def spy(message, receipt):
            seen.append(dict(message.payload))
            original_receive(message, receipt)

        server.receive_sensed_data = spy
        server.submit_task(
            make_spec(
                spatial_density=1, sampling_period_s=None, sampling_duration_s=None
            ),
            lambda p: None,
        )
        sim.run(until=2000.0)
        assert len(seen) >= 1
        assert clients[0].stats.uploads_retried >= 1
        first = seen[0]
        assert first["upload_id"] == f"d0:{first['request_id']}"
        assert first["attempt"] >= 2  # earlier attempts died in the network

    def test_deterministic_jitter_same_seed_same_schedule(self):
        def signature():
            reset_global_ids()  # task/message ids are process-global
            sim = Simulator(seed=77)
            server, _, _, _, _ = retry_setup(
                sim,
                n_devices=2,
                retry=RetryPolicy(
                    max_attempts=5,
                    ack_timeout_s=20.0,
                    backoff_base_s=15.0,
                    jitter_fraction=0.5,
                    tail_wait_max_s=30.0,
                ),
                loss_model=GilbertElliott(
                    p_good_to_bad=0.5, p_bad_to_good=0.3, loss_bad=1.0
                ),
            )
            server.submit_task(
                make_spec(
                    spatial_density=2,
                    sampling_period_s=600.0,
                    sampling_duration_s=1800.0,
                ),
                lambda p: None,
            )
            sim.run(until=2500.0)
            server.shutdown()
            return structured_log(sim).signature()

        assert signature() == signature()

    def test_tail_aware_retry_waits_for_connected_window(self):
        sim = Simulator(seed=1)
        server, _, _, devices, clients = retry_setup(
            sim,
            n_devices=1,
            plan=FaultPlan()
            .set_loss_model(
                0.0, GilbertElliott(p_good_to_bad=1.0, p_bad_to_good=0.0, loss_bad=1.0)
            )
            .clear_loss_model(400.0),
            retry=RetryPolicy(
                max_attempts=6,
                ack_timeout_s=20.0,
                backoff_base_s=30.0,
                jitter_fraction=0.0,
                tail_wait_max_s=600.0,  # patient: prefers a tail
            ),
            config=SenseAidConfig(
                mode=ServerMode.COMPLETE,
                deadline_grace_s=60.0,
                one_shot_deadline_s=120.0,
            ),
        )
        server.submit_task(
            make_spec(
                spatial_density=1, sampling_period_s=None, sampling_duration_s=None
            ),
            lambda p: None,
        )
        # A user-traffic burst at t=450 opens a tail after the network
        # healed; the deferred retry should ride it.
        sim.schedule_at(
            450.0,
            lambda: devices[0].modem.transmit(5000, TrafficCategory.BACKGROUND),
        )
        sim.run(until=1200.0)
        assert clients[0].stats.retries_in_tail >= 1
        assert clients[0].stats.uploads_acked == 1
        assert server.stats.data_points == 1


class TestDegradedMode:
    def degraded_run(self):
        sim = Simulator(seed=3)
        plan = FaultPlan().partition(700.0, heal_after=1900.0)
        server, network, injector, devices, clients = retry_setup(
            sim,
            n_devices=1,
            degraded=DegradedModePolicy(period_s=300.0),
            plan=plan,
            config=SenseAidConfig(
                mode=ServerMode.COMPLETE,
                deadline_grace_s=60.0,
                one_shot_deadline_s=300.0,
            ),
        )
        return sim, server, network, injector, devices, clients

    def test_partition_enters_and_exits_degraded(self):
        sim, server, network, _, _, clients = self.degraded_run()
        server.submit_task(
            make_spec(
                spatial_density=1, sampling_period_s=None, sampling_duration_s=None
            ),
            lambda p: None,
        )
        sim.run(until=800.0)
        assert clients[0].degraded
        sim.run(until=2700.0)
        assert not clients[0].degraded
        assert clients[0].stats.degraded_entries == 1

    def test_degraded_uploads_ride_path1(self):
        sim, server, network, _, _, clients = self.degraded_run()
        server.submit_task(
            make_spec(
                spatial_density=1, sampling_period_s=None, sampling_duration_s=None
            ),
            lambda p: None,
        )
        path1_before = None

        def snapshot():
            nonlocal path1_before
            path1_before = network.path1_messages

        sim.schedule_at(750.0, snapshot)
        sim.run(until=2600.0)
        client = clients[0]
        assert client.stats.degraded_uploads >= 4  # ~5 periods in 1900 s
        assert network.path1_messages > path1_before

    def test_recovery_resyncs_unacked_uploads(self):
        """An upload stuck in-flight across the partition is replayed on
        heal and lands exactly once."""
        sim = Simulator(seed=3)
        received = []
        # Partition strikes *before* the one-shot request's upload can
        # be acknowledged: total loss from t=0, partition at 150 (so
        # the forced upload at ~240 happens into a dead control plane),
        # heal at 1000.
        plan = (
            FaultPlan()
            .set_loss_model(
                0.0, GilbertElliott(p_good_to_bad=1.0, p_bad_to_good=0.0, loss_bad=1.0)
            )
            .partition(150.0)
            .clear_loss_model(900.0)
            .heal(1000.0)
        )
        server, network, injector, devices, clients = retry_setup(
            sim,
            n_devices=1,
            degraded=DegradedModePolicy(period_s=300.0),
            plan=plan,
            config=SenseAidConfig(
                mode=ServerMode.COMPLETE,
                deadline_grace_s=60.0,
                one_shot_deadline_s=240.0,
            ),
        )
        server.submit_task(
            make_spec(
                spatial_density=1, sampling_period_s=None, sampling_duration_s=None
            ),
            received.append,
        )
        sim.run(until=2500.0)
        client = clients[0]
        assert client.stats.resync_uploads >= 1
        assert client.stats.uploads_acked == 1
        assert server.stats.data_points == 1
        assert len(received) == 1
        events = structured_log(sim)
        assert len(events.records(kind="degraded_enter")) == 1
        assert len(events.records(kind="degraded_exit")) == 1

    def test_power_off_silences_degraded_client(self):
        sim, server, network, injector, devices, clients = self.degraded_run()
        server.submit_task(
            make_spec(
                spatial_density=1, sampling_period_s=None, sampling_duration_s=None
            ),
            lambda p: None,
        )
        sim.run(until=800.0)
        assert clients[0].degraded
        clients[0].power_off()
        uploads_at_death = clients[0].stats.degraded_uploads
        sim.run(until=2600.0)
        assert clients[0].stats.degraded_uploads == uploads_at_death
        assert not clients[0].degraded
