"""Unit/integration tests for the client-side library's tail machinery."""

from __future__ import annotations

import pytest

from repro.cellular.packets import TrafficCategory
from repro.cellular.rrc import RRCState
from repro.core.config import SenseAidConfig, ServerMode
from repro.devices.sensors import SensorType
from repro.sim.engine import Simulator
from tests.test_core_server import CENTER, make_setup, make_spec


class TestUploadOpportunities:
    def test_idle_device_waits_then_forces_at_deadline(self):
        sim = Simulator()
        server, _, devices, clients = make_setup(sim, n_devices=2)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        # No background traffic, so no tail ever opens; the client
        # must force the upload just before the deadline.
        sim.run(until=560.0)
        assert clients[0].stats.uploads_total == 0
        sim.run(until=620.0)
        assert clients[0].stats.uploads_forced == 1
        assert server.stats.data_points == 2

    def test_tail_upload_when_traffic_flows(self):
        sim = Simulator(seed=8)
        server, _, devices, clients = make_setup(sim, n_devices=2, start_traffic=True)
        for device in devices:
            # Guarantee a session well inside the window.
            device.traffic.stop()
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=100.0)
        devices[0].modem.transmit(20_000, TrafficCategory.BACKGROUND)
        devices[1].modem.transmit(20_000, TrafficCategory.BACKGROUND)
        sim.run(until=620.0)
        total_tail = sum(c.stats.uploads_in_tail for c in clients)
        assert total_tail == 2
        assert all(c.stats.uploads_forced == 0 for c in clients)

    def test_assignment_during_tail_uploads_immediately(self):
        sim = Simulator()
        server, _, devices, clients = make_setup(sim, n_devices=2)
        devices[0].modem.transmit(20_000, TrafficCategory.BACKGROUND)
        devices[1].modem.transmit(20_000, TrafficCategory.BACKGROUND)
        sim.run(until=3.0)
        assert devices[0].modem.in_tail
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=10.0)
        assert sum(c.stats.uploads_in_tail for c in clients) == 2

    def test_assignment_during_active_piggybacks(self):
        sim = Simulator()
        server, _, devices, clients = make_setup(sim, n_devices=2)
        for device in devices:
            device.modem.transmit(5_000_000, TrafficCategory.BACKGROUND)  # long
        sim.run(until=1.0)
        assert devices[0].modem.state is RRCState.ACTIVE
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=60.0)
        assert sum(c.stats.uploads_piggybacked for c in clients) == 2

    def test_forced_upload_pays_cold_cost(self):
        sim = Simulator()
        server, _, devices, clients = make_setup(sim, n_devices=2)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=650.0)
        device = devices[0]
        cold = device.modem.profile.cold_upload_energy_j(600)
        assert device.crowdsensing_energy_j() == pytest.approx(
            cold + 0.022, rel=0.05
        )  # + one barometer sample

    def test_tail_upload_in_complete_mode_is_nearly_free(self):
        sim = Simulator()
        server, _, devices, clients = make_setup(
            sim, n_devices=2, mode=ServerMode.COMPLETE
        )
        devices[0].modem.transmit(20_000, TrafficCategory.BACKGROUND)
        devices[1].modem.transmit(20_000, TrafficCategory.BACKGROUND)
        sim.run(until=3.0)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=650.0)
        upload_cost = devices[0].ledger.breakdown(TrafficCategory.CROWDSENSING)
        assert upload_cost.get("tail_upload_no_reset", 0.0) < 0.1

    def test_basic_mode_resets_tail_on_upload(self):
        sim = Simulator()
        server, _, devices, _ = make_setup(sim, n_devices=2, mode=ServerMode.BASIC)
        devices[0].modem.transmit(20_000, TrafficCategory.BACKGROUND)
        devices[1].modem.transmit(20_000, TrafficCategory.BACKGROUND)
        sim.run(until=3.0)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=650.0)
        breakdown = devices[0].ledger.breakdown(TrafficCategory.CROWDSENSING)
        assert "tail_upload_reset" in breakdown


class TestStateReports:
    def test_state_report_sent_at_tail_entry(self):
        sim = Simulator()
        server, _, devices, clients = make_setup(sim, n_devices=1)
        devices[0].sample(SensorType.BAROMETER)  # spend some energy
        devices[0].modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=5.0)
        assert clients[0].stats.state_reports == 1
        record = server.devices.record("d0")
        assert record.energy_used_j == pytest.approx(
            devices[0].crowdsensing_energy_j()
        )

    def test_state_reports_cost_no_crowdsensing_energy(self):
        sim = Simulator()
        server, _, devices, clients = make_setup(sim, n_devices=1)
        devices[0].modem.transmit(600, TrafficCategory.BACKGROUND)
        sim.run(until=60.0)
        assert clients[0].stats.state_reports == 1
        assert devices[0].crowdsensing_energy_j() == 0.0


class TestDeregistration:
    def test_pending_assignments_cancelled_on_deregister(self):
        sim = Simulator()
        server, _, _, clients = make_setup(sim, n_devices=2)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=10.0)
        assert clients[0].pending_count == 1
        clients[0].deregister()
        assert clients[0].pending_count == 0
        sim.run(until=650.0)
        assert clients[0].stats.uploads_total == 0


class TestBindingAndMigration:
    def test_bind_while_registered_rejected(self):
        sim = Simulator()
        server, network, _, clients = make_setup(sim, n_devices=1)
        with pytest.raises(RuntimeError):
            clients[0].bind_server(server)

    def test_bind_after_deregister(self):
        sim = Simulator()
        server, network, _, clients = make_setup(sim, n_devices=1)
        clients[0].deregister()
        clients[0].bind_server(server)
        clients[0].register()
        assert clients[0].registered

    def test_migrate_drops_pending_assignments(self):
        sim = Simulator()
        server, network, _, clients = make_setup(sim, n_devices=2)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=10.0)
        assert clients[0].pending_count == 1
        # Second server on the same world.
        from repro.cellular.enodeb import ENodeB, TowerRegistry
        from repro.core.server import SenseAidServer

        other = SenseAidServer(
            sim,
            TowerRegistry([ENodeB("t9", CENTER, coverage_radius_m=5000.0)]),
            network,
        )
        clients[0].migrate(other)
        assert clients[0].pending_count == 0
        assert clients[0].server is other
        assert "d0" in other.devices
        assert "d0" not in server.devices
        other.shutdown()

    def test_migrate_unregistered_client(self):
        sim = Simulator()
        server, network, _, clients = make_setup(sim, n_devices=1)
        clients[0].deregister()
        clients[0].migrate(server)
        assert clients[0].registered


class TestPublicApi:
    def test_start_sensing_returns_reading(self):
        sim = Simulator()
        server, _, devices, clients = make_setup(sim, n_devices=2)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=10.0)
        # grab the live pending assignment and drive the public API
        pending = list(clients[0]._pending.values())[0]
        reading = clients[0].start_sensing(pending.assignment)
        assert reading.sensor_type is SensorType.BAROMETER

    def test_send_sense_data_delivers(self):
        sim = Simulator()
        server, _, devices, clients = make_setup(sim, n_devices=2)
        received = []
        server.submit_task(make_spec(sampling_duration_s=600.0), received.append)
        sim.run(until=10.0)
        pending = list(clients[0]._pending.values())[0]
        reading = clients[0].start_sensing(pending.assignment)
        clients[0].send_sense_data(pending.assignment, reading)
        sim.run(until=30.0)
        assert len(received) == 1
