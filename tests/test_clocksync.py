"""Tests for device clock skew and low-duty synchronization."""

from __future__ import annotations

import pytest

from repro.devices.clocksync import LowDutySync, SkewedClock
from repro.sim.engine import Simulator


class TestSkewedClock:
    def test_perfect_clock(self):
        sim = Simulator()
        clock = SkewedClock(sim)
        sim.run_for(100.0)
        assert clock.error() == 0.0
        assert clock.now() == sim.now

    def test_static_offset(self):
        sim = Simulator()
        clock = SkewedClock(sim, initial_offset_s=2.5)
        sim.run_for(50.0)
        assert clock.error() == pytest.approx(2.5)
        assert clock.now() == pytest.approx(sim.now + 2.5)

    def test_drift_accumulates(self):
        sim = Simulator()
        clock = SkewedClock(sim, drift_ppm=50.0)  # 50 µs/s
        sim.run_for(10_000.0)
        assert clock.error() == pytest.approx(0.5)

    def test_offset_plus_drift(self):
        sim = Simulator()
        clock = SkewedClock(sim, initial_offset_s=1.0, drift_ppm=100.0)
        sim.run_for(1000.0)
        assert clock.error() == pytest.approx(1.0 + 0.1)

    def test_correct_removes_measured_error(self):
        sim = Simulator()
        clock = SkewedClock(sim, initial_offset_s=3.0)
        sim.run_for(10.0)
        clock.correct(3.0)  # perfect measurement
        assert clock.error() == pytest.approx(0.0)

    def test_correct_with_imperfect_measurement(self):
        sim = Simulator()
        clock = SkewedClock(sim, initial_offset_s=3.0)
        clock.correct(2.9)
        assert clock.error() == pytest.approx(0.1)


class TestLowDutySync:
    def test_sync_bounds_error_despite_drift(self):
        """The §6 claim: a low-duty sync protocol keeps the device
        clocks usable.  Without sync a 50 ppm clock drifts 1.8 s over
        10 h; with 10-minute sync rounds the error stays within the
        network jitter."""
        sim = Simulator(seed=1)
        clock = SkewedClock(sim, initial_offset_s=0.5, drift_ppm=50.0)
        sync = LowDutySync(sim, clock, period_s=600.0, jitter_s=0.01)
        sync.start(initial_delay=0.0)
        sim.run(until=10 * 3600.0)
        assert sync.rounds == pytest.approx(61, abs=2)
        # Residual: jitter/2 worst case + ≤600 s of 50 ppm drift.
        assert abs(clock.error()) < 0.05

    def test_unsynced_clock_drifts_far(self):
        sim = Simulator()
        clock = SkewedClock(sim, drift_ppm=50.0)
        sim.run(until=10 * 3600.0)
        assert abs(clock.error()) > 1.0

    def test_sync_now_returns_residual(self):
        sim = Simulator(seed=1)
        clock = SkewedClock(sim, initial_offset_s=5.0)
        sync = LowDutySync(sim, clock, jitter_s=0.002)
        residual = sync.sync_now()
        assert abs(residual) <= sync.max_residual_error_s()

    def test_stop_halts_rounds(self):
        sim = Simulator(seed=1)
        clock = SkewedClock(sim, drift_ppm=50.0)
        sync = LowDutySync(sim, clock, period_s=100.0)
        sync.start(initial_delay=0.0)
        sim.run(until=250.0)
        sync.stop()
        rounds = sync.rounds
        sim.run(until=2000.0)
        assert sync.rounds == rounds

    def test_double_start_rejected(self):
        sim = Simulator()
        sync = LowDutySync(sim, SkewedClock(sim))
        sync.start()
        with pytest.raises(RuntimeError):
            sync.start()

    def test_parameter_validation(self):
        sim = Simulator()
        clock = SkewedClock(sim)
        with pytest.raises(ValueError):
            LowDutySync(sim, clock, period_s=0.0)
        with pytest.raises(ValueError):
            LowDutySync(sim, clock, jitter_s=-1.0)

    def test_deterministic_with_seed(self):
        def residual(seed):
            sim = Simulator(seed=seed)
            clock = SkewedClock(sim, initial_offset_s=1.0, drift_ppm=30.0)
            sync = LowDutySync(sim, clock, period_s=300.0)
            sync.start()
            sim.run(until=3600.0)
            return clock.error()

        assert residual(5) == residual(5)
