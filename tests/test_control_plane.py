"""Tests for the control-plane modes (pull vs paged push)."""

from __future__ import annotations

import pytest

from repro.core.config import ControlPlane, SenseAidConfig, ServerMode
from repro.sim.engine import Simulator
from tests.test_core_server import make_setup, make_spec


def paged_config():
    return SenseAidConfig(
        mode=ServerMode.COMPLETE, control_plane=ControlPlane.PUSH_PAGED
    )


class TestPagedAssignments:
    def test_paged_assignment_still_delivers_data(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3, config=paged_config())
        data = []
        server.submit_task(make_spec(sampling_duration_s=600.0), data.append)
        sim.run(until=660.0)
        assert len(data) == 2
        assert server.stats.requests_satisfied == 1

    def test_paging_wakes_idle_radio(self):
        sim = Simulator()
        server, _, devices, _ = make_setup(sim, n_devices=2, config=paged_config())
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=660.0)
        # Each selected device got paged (1 promotion) and then the
        # forced upload in-tail or a second promotion; at least the
        # page itself promoted the radio.
        for device in devices:
            assert device.modem.promotions >= 1

    def test_paging_charges_crowdsensing_energy(self):
        sim = Simulator()
        server, _, devices, _ = make_setup(sim, n_devices=2, config=paged_config())
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=660.0)
        total_paged = sum(d.crowdsensing_energy_j() for d in devices)

        sim2 = Simulator()
        server2, _, devices2, _ = make_setup(sim2, n_devices=2)
        server2.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim2.run(until=660.0)
        total_pull = sum(d.crowdsensing_energy_j() for d in devices2)
        assert total_paged > total_pull

    def test_paged_assignment_arrives_in_tail_it_created(self):
        """The page promotes the radio; by the time the client sees the
        assignment the radio is connected, so the upload piggybacks on
        the page's own burst — still far costlier than pull, but the
        client logic composes correctly."""
        sim = Simulator()
        server, _, _, clients = make_setup(sim, n_devices=2, config=paged_config())
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=660.0)
        uploads = sum(
            c.stats.uploads_piggybacked + c.stats.uploads_in_tail for c in clients
        )
        assert uploads == 2
        assert all(c.stats.uploads_forced == 0 for c in clients)

    def test_default_is_pull(self):
        assert SenseAidConfig().control_plane is ControlPlane.PULL
