"""Unit tests for the device/task datastores and the request queues."""

from __future__ import annotations

import pytest

from repro.core.datastores import DeviceDatastore, DeviceRecord, TaskDatastore
from repro.core.queues import RequestQueue
from tests.test_core_tasks import make_task


def make_record(device_id="d1", **kwargs) -> DeviceRecord:
    defaults = dict(
        device_id=device_id,
        imei_hash="abc123",
        device_model="Nominal",
        energy_budget_j=496.0,
        critical_battery_pct=20.0,
    )
    defaults.update(kwargs)
    return DeviceRecord(**defaults)


class TestDeviceRecord:
    def test_budget_tracking(self):
        record = make_record(energy_used_j=100.0)
        assert record.remaining_budget_j() == pytest.approx(396.0)
        assert not record.over_budget()
        record.energy_used_j = 500.0
        assert record.over_budget()
        assert record.remaining_budget_j() == 0.0

    def test_critical_battery(self):
        record = make_record(battery_pct=19.0)
        assert record.below_critical_battery()
        record.battery_pct = 21.0
        assert not record.below_critical_battery()

    def test_ttl(self):
        record = make_record()
        assert record.ttl_s(100.0) is None
        record.last_comm_time = 90.0
        assert record.ttl_s(100.0) == pytest.approx(10.0)

    def test_epoch_reset(self):
        record = make_record(energy_used_j=50.0, times_selected=7)
        record.reset_epoch()
        assert record.energy_used_j == 0.0
        assert record.times_selected == 0


class TestDeviceDatastore:
    def test_register_and_lookup(self):
        store = DeviceDatastore()
        store.register(make_record("d1"))
        assert "d1" in store
        assert len(store) == 1
        assert store.record("d1").device_id == "d1"

    def test_duplicate_registration_rejected(self):
        store = DeviceDatastore()
        store.register(make_record("d1"))
        with pytest.raises(ValueError):
            store.register(make_record("d1"))

    def test_deregister(self):
        store = DeviceDatastore()
        store.register(make_record("d1"))
        store.deregister("d1")
        assert "d1" not in store
        with pytest.raises(KeyError):
            store.deregister("d1")

    def test_records_sorted(self):
        store = DeviceDatastore()
        store.register(make_record("z"))
        store.register(make_record("a"))
        assert [r.device_id for r in store.records()] == ["a", "z"]

    def test_update_state(self):
        store = DeviceDatastore()
        store.register(make_record("d1"))
        store.update_state(
            "d1", battery_pct=42.0, energy_used_j=7.0, last_comm_time=99.0
        )
        record = store.record("d1")
        assert record.battery_pct == 42.0
        assert record.energy_used_j == 7.0
        assert record.last_comm_time == 99.0

    def test_update_state_validates(self):
        store = DeviceDatastore()
        store.register(make_record("d1"))
        with pytest.raises(ValueError):
            store.update_state("d1", battery_pct=150.0)
        with pytest.raises(ValueError):
            store.update_state("d1", energy_used_j=-1.0)

    def test_mark_selected(self):
        store = DeviceDatastore()
        store.register(make_record("d1"))
        store.mark_selected("d1")
        store.mark_selected("d1")
        assert store.record("d1").times_selected == 2

    def test_unresponsive_tracking(self):
        store = DeviceDatastore()
        store.register(make_record("d1"))
        store.mark_unresponsive("d1")
        assert not store.record("d1").responsive
        store.mark_responsive("d1")
        assert store.record("d1").responsive

    def test_invalid_data_count(self):
        store = DeviceDatastore()
        store.register(make_record("d1"))
        store.note_invalid_data("d1")
        assert store.record("d1").invalid_data_count == 1

    def test_epoch_reset_all(self):
        store = DeviceDatastore()
        store.register(make_record("d1", times_selected=3))
        store.register(make_record("d2", times_selected=5))
        store.reset_epoch()
        assert all(r.times_selected == 0 for r in store.records())

    def test_missing_device_raises(self):
        with pytest.raises(KeyError):
            DeviceDatastore().record("ghost")


class TestTaskDatastore:
    def test_add_get_remove(self):
        store = TaskDatastore()
        task = make_task()
        store.add(task)
        assert task.task_id in store
        assert store.get(task.task_id) is task
        removed = store.remove(task.task_id)
        assert removed is task
        assert task.task_id not in store

    def test_duplicate_add_rejected(self):
        store = TaskDatastore()
        task = make_task()
        store.add(task)
        with pytest.raises(ValueError):
            store.add(task)

    def test_replace(self):
        store = TaskDatastore()
        task = make_task()
        store.add(task)
        updated = task.with_updates(spatial_density=9)
        store.replace(updated)
        assert store.get(task.task_id).spatial_density == 9

    def test_replace_missing_rejected(self):
        with pytest.raises(KeyError):
            TaskDatastore().replace(make_task())

    def test_tasks_from_origin(self):
        store = TaskDatastore()
        a = make_task(origin="weather")
        b = make_task(origin="traffic")
        store.add(a)
        store.add(b)
        assert store.tasks_from("weather") == [a]

    def test_missing_task_raises(self):
        with pytest.raises(KeyError):
            TaskDatastore().get(999)
        with pytest.raises(KeyError):
            TaskDatastore().remove(999)


class TestRequestQueue:
    def _requests(self, task=None, count=3):
        task = task if task is not None else make_task(
            sampling_period_s=600.0, sampling_duration_s=count * 600.0
        )
        return task.expand_requests(0.0)

    def test_pops_in_deadline_order(self):
        queue = RequestQueue("run")
        requests = self._requests()
        for request in reversed(requests):
            queue.push(request)
        popped = [queue.pop() for _ in range(len(requests))]
        deadlines = [r.deadline for r in popped]
        assert deadlines == sorted(deadlines)

    def test_empty_queue(self):
        queue = RequestQueue("run")
        assert not queue
        assert queue.pop() is None
        assert queue.peek() is None

    def test_peek_does_not_remove(self):
        queue = RequestQueue("run")
        request = self._requests()[0]
        queue.push(request)
        assert queue.peek() is request
        assert len(queue) == 1

    def test_retract_task_drops_requests(self):
        queue = RequestQueue("run")
        requests = self._requests()
        for request in requests:
            queue.push(request)
        dropped = queue.retract_task(requests[0].task.task_id)
        assert dropped == len(requests)
        assert len(queue) == 0
        assert queue.pop() is None

    def test_retract_blocks_future_pushes_until_allowed(self):
        queue = RequestQueue("run")
        requests = self._requests()
        task_id = requests[0].task.task_id
        queue.retract_task(task_id)
        queue.push(requests[0])
        assert len(queue) == 0
        queue.allow_task(task_id)
        queue.push(requests[0])
        assert len(queue) == 1

    def test_drain_satisfiable_keeps_order_of_rest(self):
        queue = RequestQueue("wait")
        requests = self._requests(count=4)
        for request in requests:
            queue.push(request)
        satisfiable = queue.drain_satisfiable(lambda r: r.sequence % 2 == 0)
        assert [r.sequence for r in satisfiable] == [0, 2]
        remaining = [queue.pop().sequence for _ in range(len(queue))]
        assert remaining == [1, 3]

    def test_drop_expired(self):
        queue = RequestQueue("wait")
        requests = self._requests(count=4)
        for request in requests:
            queue.push(request)
        expired = queue.drop_expired(now=1300.0)
        assert [r.sequence for r in expired] == [0, 1]
        assert len(queue) == 2

    def test_iteration_is_nondestructive(self):
        queue = RequestQueue("run")
        for request in self._requests():
            queue.push(request)
        listed = list(queue)
        assert len(listed) == 3
        assert len(queue) == 3
        assert [r.deadline for r in listed] == sorted(r.deadline for r in listed)
