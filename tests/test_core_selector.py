"""Unit tests for the four-factor device selector."""

from __future__ import annotations

import pytest

from repro.core.config import SelectorWeights
from repro.core.selector import DeviceSelector
from tests.test_core_datastores_queues import make_record

NOW = 1000.0


def selector(**kwargs) -> DeviceSelector:
    weights = kwargs.pop("weights", SelectorWeights())
    return DeviceSelector(weights, **kwargs)


class TestScore:
    def test_score_is_linear_combination(self):
        weights = SelectorWeights(
            alpha=1.0, beta=2.0, gamma=3.0, phi=4.0, ttl_cap_s=100.0
        )
        record = make_record(
            energy_used_j=10.0,
            times_selected=2,
            battery_pct=80.0,
            last_comm_time=NOW - 5.0,
        )
        score = DeviceSelector(weights).score(record, NOW)
        assert score == pytest.approx(1.0 * 10 + 2.0 * 2 + 3.0 * 20 + 4.0 * 5)

    def test_ttl_capped(self):
        weights = SelectorWeights(alpha=0, beta=0, gamma=0, phi=1.0, ttl_cap_s=50.0)
        record = make_record(last_comm_time=NOW - 500.0)
        assert DeviceSelector(weights).score(record, NOW) == pytest.approx(50.0)

    def test_never_communicated_gets_worst_ttl(self):
        weights = SelectorWeights(alpha=0, beta=0, gamma=0, phi=1.0, ttl_cap_s=50.0)
        record = make_record(last_comm_time=None)
        assert DeviceSelector(weights).score(record, NOW) == pytest.approx(50.0)

    def test_lower_battery_scores_worse(self):
        s = selector()
        full = make_record("full", battery_pct=100.0)
        low = make_record("low", battery_pct=30.0)
        assert s.score(low, NOW) > s.score(full, NOW)

    def test_more_selections_score_worse(self):
        s = selector()
        fresh = make_record("fresh", times_selected=0)
        used = make_record("used", times_selected=3)
        assert s.score(used, NOW) > s.score(fresh, NOW)


class TestEligibility:
    def test_over_budget_ineligible(self):
        verdict = selector().eligibility(make_record(energy_used_j=496.0))
        assert not verdict.eligible
        assert verdict.reason == "over_budget"

    def test_critical_battery_ineligible(self):
        verdict = selector().eligibility(make_record(battery_pct=10.0))
        assert not verdict.eligible
        assert verdict.reason == "critical_battery"

    def test_unresponsive_ineligible(self):
        verdict = selector().eligibility(make_record(responsive=False))
        assert not verdict.eligible
        assert verdict.reason == "unresponsive"

    def test_selection_cap(self):
        s = selector(max_selections_per_epoch=2)
        assert s.eligibility(make_record(times_selected=1)).eligible
        verdict = s.eligibility(make_record(times_selected=2))
        assert not verdict.eligible
        assert verdict.reason == "selection_cap"

    def test_healthy_device_eligible(self):
        assert selector().eligibility(make_record()).eligible


class TestSelect:
    def _pool(self, n=5):
        return [make_record(f"d{i}") for i in range(n)]

    def test_selects_n_best(self):
        records = self._pool()
        records[2].times_selected = 10  # worst
        selected = selector().select(records, 4, NOW)
        assert selected is not None
        assert "d2" not in selected
        assert len(selected) == 4

    def test_unsatisfiable_returns_none(self):
        """Paper: if n > N the request goes to the wait queue."""
        assert selector().select(self._pool(2), 3, NOW) is None

    def test_ineligible_devices_reduce_pool(self):
        records = self._pool(3)
        records[0].battery_pct = 5.0
        assert selector().select(records, 3, NOW) is None
        assert selector().select(records, 2, NOW) is not None

    def test_equal_scores_tie_break_on_device_id(self):
        selected = selector().select(self._pool(4), 2, NOW)
        assert selected == ["d0", "d1"]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            selector().select(self._pool(), 0, NOW)

    def test_rank_sorted_best_first(self):
        records = self._pool(3)
        records[0].times_selected = 2
        records[1].times_selected = 1
        ranked = selector().rank(records, NOW)
        assert [r.device_id for r in ranked] == ["d2", "d1", "d0"]

    def test_ineligible_listing(self):
        records = self._pool(3)
        records[1].responsive = False
        bad = selector().ineligible(records)
        assert len(bad) == 1
        assert bad[0].device_id == "d1"


class TestFairnessRotation:
    def test_rotation_through_pool(self):
        """Repeated selections with U-dominant weights rotate fairly —
        the Fig. 9 behaviour."""
        records = [make_record(f"d{i}") for i in range(11)]
        s = selector()
        counts = {r.device_id: 0 for r in records}
        for _ in range(9):  # 9 rounds × 2 picks = Fig. 9's workload
            selected = s.select(records, 2, NOW)
            for device_id in selected:
                counts[device_id] += 1
                next(r for r in records if r.device_id == device_id).times_selected += 1
        assert max(counts.values()) <= 2
        assert min(counts.values()) >= 1

    def test_recently_communicated_preferred_among_equals(self):
        fresh = make_record("fresh", last_comm_time=NOW - 2.0)
        stale = make_record("stale", last_comm_time=NOW - 250.0)
        selected = selector().select([stale, fresh], 1, NOW)
        assert selected == ["fresh"]

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            SelectorWeights(alpha=-1.0)
        with pytest.raises(ValueError):
            SelectorWeights(ttl_cap_s=-5.0)
