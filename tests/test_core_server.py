"""Integration tests for the Sense-Aid server (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.cellular.packets import TrafficCategory
from repro.clientlib.client import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.core.tasks import TaskSpec
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point
from repro.sim.engine import Simulator
from tests.conftest import make_device

CENTER = Point(500.0, 500.0)


def make_setup(
    sim,
    n_devices=4,
    mode=ServerMode.COMPLETE,
    *,
    positions=None,
    config=None,
    start_traffic=False,
):
    registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)])
    network = CellularNetwork(sim)
    server_config = config if config is not None else SenseAidConfig(mode=mode)
    server = SenseAidServer(sim, registry, network, server_config)
    devices, clients = [], []
    for i in range(n_devices):
        position = positions[i] if positions else CENTER
        device = make_device(sim, f"d{i}", position=position)
        client = SenseAidClient(sim, device, server, network)
        client.register()
        if start_traffic:
            device.traffic.start()
        devices.append(device)
        clients.append(client)
    return server, network, devices, clients


def make_spec(**kwargs) -> TaskSpec:
    defaults = dict(
        sensor_type=SensorType.BAROMETER,
        center=CENTER,
        area_radius_m=1000.0,
        spatial_density=2,
        sampling_period_s=600.0,
        sampling_duration_s=1800.0,
    )
    defaults.update(kwargs)
    return TaskSpec(**defaults)


class TestRegistration:
    def test_register_populates_datastore(self):
        sim = Simulator()
        server, _, devices, _ = make_setup(sim, n_devices=2)
        assert len(server.devices) == 2
        record = server.devices.record("d0")
        assert record.imei_hash == devices[0].imei_hash
        assert record.energy_budget_j == devices[0].preferences.energy_budget_j

    def test_double_register_rejected(self):
        sim = Simulator()
        _, _, _, clients = make_setup(sim, n_devices=1)
        with pytest.raises(RuntimeError):
            clients[0].register()

    def test_deregister_removes_device(self):
        sim = Simulator()
        server, _, _, clients = make_setup(sim, n_devices=2)
        clients[0].deregister()
        assert len(server.devices) == 1
        assert not clients[0].registered

    def test_deregister_unregistered_rejected(self):
        sim = Simulator()
        _, _, _, clients = make_setup(sim, n_devices=1)
        clients[0].deregister()
        with pytest.raises(RuntimeError):
            clients[0].deregister()

    def test_update_preferences_propagates(self):
        sim = Simulator()
        server, _, devices, clients = make_setup(sim, n_devices=1)
        clients[0].update_preferences(energy_budget_j=100.0, critical_battery_pct=30.0)
        record = server.devices.record("d0")
        assert record.energy_budget_j == 100.0
        assert record.critical_battery_pct == 30.0
        assert devices[0].preferences.energy_budget_j == 100.0


class TestSchedulingWorkflow:
    def test_request_satisfied_end_to_end(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=4)
        data = []
        server.submit_task(make_spec(sampling_duration_s=600.0), data.append)
        sim.run(until=700.0)
        assert server.stats.requests_issued == 1
        assert server.stats.requests_scheduled == 1
        assert server.stats.requests_satisfied == 1
        assert len(data) == 2  # spatial density

    def test_selects_exactly_spatial_density(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=6)
        server.submit_task(make_spec(spatial_density=3), lambda p: None)
        sim.run(until=2000.0)
        for event in server.selection_log:
            assert len(event.selected) == 3
            assert len(event.qualified) == 6

    def test_periodic_task_generates_all_requests(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        server.submit_task(
            make_spec(sampling_period_s=600.0, sampling_duration_s=3600.0),
            lambda p: None,
        )
        sim.run(until=3700.0)
        assert server.stats.requests_issued == 6

    def test_unsatisfiable_goes_to_wait_queue(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=1)
        server.submit_task(
            make_spec(spatial_density=3, sampling_duration_s=600.0), lambda p: None
        )
        sim.run(until=50.0)
        assert server.stats.requests_waitlisted == 1
        assert len(server.wait_queue) == 1

    def test_wait_queue_request_expires_at_deadline(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=1)
        server.submit_task(
            make_spec(spatial_density=3, sampling_duration_s=600.0), lambda p: None
        )
        sim.run(until=700.0)
        assert server.stats.requests_expired == 1
        assert len(server.wait_queue) == 0

    def test_wait_queue_recovers_when_devices_arrive(self):
        sim = Simulator()
        server, network, _, _ = make_setup(sim, n_devices=1)
        server.submit_task(
            make_spec(spatial_density=2, sampling_duration_s=600.0), lambda p: None
        )
        sim.run(until=50.0)
        assert server.stats.requests_waitlisted == 1
        # A second device registers mid-window; the wait checker should
        # pick the request back up before its deadline.
        device = make_device(sim, "late", position=CENTER)
        client = SenseAidClient(sim, device, server, network)
        client.register()
        sim.run(until=590.0)
        assert server.stats.requests_scheduled == 1

    def test_qualification_requires_region(self):
        sim = Simulator()
        positions = [CENTER, CENTER, Point(5000.0, 5000.0)]
        server, _, _, _ = make_setup(sim, n_devices=3, positions=positions)
        spec = make_spec(area_radius_m=500.0)
        request = spec.expand_requests(0.0)[0]
        assert server.qualified_devices(request) == ["d0", "d1"]

    def test_qualification_requires_sensor(self):
        sim = Simulator()
        server, network, _, _ = make_setup(sim, n_devices=2)
        from repro.devices.profiles import profile_by_model

        no_baro = make_device(
            sim, "nobaro", position=CENTER, profile=profile_by_model("Moto E")
        )
        SenseAidClient(sim, no_baro, server, network).register()
        request = make_spec().expand_requests(0.0)[0]
        assert "nobaro" not in server.qualified_devices(request)

    def test_qualification_device_type_restriction(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=2)
        request = make_spec(device_type="iPhone 6").expand_requests(0.0)[0]
        assert server.qualified_devices(request) == []

    def test_select_all_qualified_mode(self):
        sim = Simulator()
        config = SenseAidConfig(select_all_qualified=True)
        server, _, _, _ = make_setup(sim, n_devices=5, config=config)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=590.0)
        assert len(server.selection_log[0].selected) == 5


class TestDataPath:
    def test_data_reaches_application_callback(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        points = []
        server.submit_task(make_spec(sampling_duration_s=600.0), points.append)
        sim.run(until=650.0)
        assert len(points) == 2
        for point in points:
            assert point.sensor_type is SensorType.BAROMETER
            assert 850.0 <= point.value <= 1100.0

    def test_application_sees_hashed_identity_only(self):
        sim = Simulator()
        server, _, devices, _ = make_setup(sim, n_devices=2)
        points = []
        server.submit_task(make_spec(sampling_duration_s=600.0), points.append)
        sim.run(until=650.0)
        hashes = {d.imei_hash for d in devices}
        ids = {d.device_id for d in devices}
        for point in points:
            assert point.device_hash in hashes
            assert point.device_hash not in ids

    def test_upload_updates_device_record(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=2)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=650.0)
        record = server.devices.record("d0")
        assert record.last_comm_time is not None
        assert record.energy_used_j > 0

    def test_duplicate_uploads_counted_once(self):
        sim = Simulator()
        server, _, _, clients = make_setup(sim, n_devices=2)
        data = []
        server.submit_task(make_spec(sampling_duration_s=600.0), data.append)
        sim.run(until=650.0)
        before = server.stats.data_points
        # Replays a duplicate payload for an already-satisfied request.
        from repro.cellular.packets import sensor_data_message
        from repro.cellular.network import DeliveryReceipt

        request_id = server.selection_log[0].request_id
        message = sensor_data_message(
            "d0",
            {
                "device_id": "d0",
                "request_id": request_id,
                "value": 1013.0,
                "battery_pct": 90.0,
                "energy_used_j": 1.0,
            },
        )
        receipt = DeliveryReceipt(1, sim.now, sim.now, "path2")
        server.receive_sensed_data(message, receipt)
        assert server.stats.data_points == before

    def test_invalid_value_rejected(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=2)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=650.0)
        from repro.cellular.packets import sensor_data_message
        from repro.cellular.network import DeliveryReceipt

        request_id = server.selection_log[0].request_id
        selected = server.selection_log[0].selected[0]
        message = sensor_data_message(
            selected,
            {
                "device_id": selected,
                "request_id": request_id,
                "value": 5.0,  # implausible pressure
            },
        )
        server.receive_sensed_data(
            message, DeliveryReceipt(1, sim.now, sim.now, "path2")
        )
        assert server.stats.invalid_data == 1
        assert server.devices.record(selected).invalid_data_count == 1


class TestTaskManagement:
    def test_delete_task_retracts_requests(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        spec = make_spec(sampling_period_s=600.0, sampling_duration_s=3600.0)
        task_id = server.submit_task(spec, lambda p: None)
        sim.run(until=700.0)
        scheduled_before = server.stats.requests_scheduled
        server.delete_task(task_id)
        sim.run(until=3700.0)
        assert server.stats.requests_scheduled == scheduled_before

    def test_update_task_changes_future_requests(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=4)
        spec = make_spec(
            spatial_density=2, sampling_period_s=600.0, sampling_duration_s=3600.0
        )
        task_id = server.submit_task(spec, lambda p: None)
        sim.run(until=700.0)
        server.update_task(task_id, spatial_density=3, sampling_duration_s=1200.0)
        sim.run(until=sim.now + 1300.0)
        late_events = [e for e in server.selection_log if e.time > 700.0]
        assert late_events
        assert all(len(e.selected) == 3 for e in late_events)


class TestFairness:
    def test_selection_rotates(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=6)
        server.submit_task(
            make_spec(
                spatial_density=2,
                sampling_period_s=600.0,
                sampling_duration_s=1800.0,
            ),
            lambda p: None,
        )
        sim.run(until=1900.0)
        counts = server.selections_per_device()
        assert sum(counts.values()) == 6
        assert max(counts.values()) == 1  # 3 rounds × 2 over 6 devices


class TestModes:
    def test_basic_resets_tail_complete_does_not(self):
        basic = SenseAidConfig(mode=ServerMode.BASIC)
        complete = SenseAidConfig(mode=ServerMode.COMPLETE)
        sim = Simulator()
        server_b, _, _, _ = make_setup(sim, n_devices=1, config=basic)
        assert server_b.crowdsensing_resets_tail()
        sim2 = Simulator()
        server_c, _, _, _ = make_setup(sim2, n_devices=1, config=complete)
        assert not server_c.crowdsensing_resets_tail()

    def test_complete_uses_less_energy_than_basic(self):
        def run(mode):
            sim = Simulator(seed=21)
            server, _, devices, _ = make_setup(
                sim, n_devices=4, mode=mode, start_traffic=True
            )
            server.submit_task(
                make_spec(sampling_period_s=600.0, sampling_duration_s=3600.0),
                lambda p: None,
            )
            sim.run(until=3700.0)
            return sum(d.crowdsensing_energy_j() for d in devices)

        assert run(ServerMode.COMPLETE) <= run(ServerMode.BASIC)
