"""Unit tests for task specs and request expansion."""

from __future__ import annotations

import pytest

from repro.core.tasks import SensingRequest, TaskSpec
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point

CENTER = Point(1000.0, 1000.0)


def make_task(**kwargs) -> TaskSpec:
    defaults = dict(
        sensor_type=SensorType.BAROMETER,
        center=CENTER,
        area_radius_m=500.0,
        spatial_density=2,
        sampling_period_s=600.0,
        sampling_duration_s=3600.0,
    )
    defaults.update(kwargs)
    return TaskSpec(**defaults)


class TestTaskValidation:
    def test_valid_task(self):
        task = make_task()
        assert not task.one_shot
        assert task.duration_s() == 3600.0

    def test_unique_task_ids(self):
        assert make_task().task_id != make_task().task_id

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            make_task(area_radius_m=0.0)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            make_task(spatial_density=0)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            make_task(sampling_period_s=-5.0)

    def test_duration_and_window_mutually_exclusive(self):
        with pytest.raises(ValueError):
            make_task(start_time=0.0, end_time=100.0)

    def test_window_requires_both_ends(self):
        with pytest.raises(ValueError):
            make_task(sampling_duration_s=None, start_time=0.0)

    def test_window_must_be_ordered(self):
        with pytest.raises(ValueError):
            make_task(sampling_duration_s=None, start_time=100.0, end_time=50.0)

    def test_periodic_needs_duration_or_window(self):
        with pytest.raises(ValueError):
            make_task(sampling_duration_s=None)

    def test_one_shot_task(self):
        task = make_task(sampling_period_s=None, sampling_duration_s=None)
        assert task.one_shot
        assert task.duration_s() is None


class TestRequestExpansion:
    def test_paper_example_60min_10min_period_6_requests(self):
        """Paper §3: 60-minute task with 10-minute period → 6 requests."""
        task = make_task(sampling_period_s=600.0, sampling_duration_s=3600.0)
        requests = task.expand_requests(0.0)
        assert len(requests) == 6

    def test_paper_example_1h_5min_12_requests(self):
        """Paper §3.2: 1-hour task at 5-minute period → 12 tasks."""
        task = make_task(sampling_period_s=300.0, sampling_duration_s=3600.0)
        assert task.request_count() == 12

    def test_issue_times_and_deadlines(self):
        task = make_task(sampling_period_s=600.0, sampling_duration_s=1800.0)
        requests = task.expand_requests(100.0)
        assert [r.issue_time for r in requests] == [100.0, 700.0, 1300.0]
        assert [r.deadline for r in requests] == [700.0, 1300.0, 1900.0]

    def test_window_based_expansion(self):
        task = make_task(
            sampling_duration_s=None,
            start_time=500.0,
            end_time=2300.0,
            sampling_period_s=600.0,
        )
        requests = task.expand_requests(0.0)
        assert len(requests) == 3
        assert requests[0].issue_time == 500.0

    def test_past_start_clamped_to_now(self):
        task = make_task(
            sampling_duration_s=None,
            start_time=0.0,
            end_time=1800.0,
            sampling_period_s=600.0,
        )
        requests = task.expand_requests(1000.0)
        assert requests[0].issue_time == 1000.0

    def test_one_shot_single_request(self):
        task = make_task(sampling_period_s=None, sampling_duration_s=None)
        requests = task.expand_requests(50.0, one_shot_deadline_s=30.0)
        assert len(requests) == 1
        assert requests[0].deadline == 80.0

    def test_request_ids_unique_within_task(self):
        task = make_task()
        requests = task.expand_requests(0.0)
        assert len({r.request_id for r in requests}) == len(requests)

    def test_devices_needed(self):
        task = make_task(spatial_density=5)
        request = task.expand_requests(0.0)[0]
        assert request.devices_needed == 5

    def test_invalid_request_deadline(self):
        task = make_task()
        with pytest.raises(ValueError):
            SensingRequest(task=task, sequence=0, issue_time=10.0, deadline=10.0)


class TestTaskUpdates:
    def test_with_updates_preserves_id(self):
        task = make_task()
        updated = task.with_updates(spatial_density=4)
        assert updated.task_id == task.task_id
        assert updated.spatial_density == 4
        assert task.spatial_density == 2  # original untouched

    def test_with_updates_validates(self):
        with pytest.raises(ValueError):
            make_task().with_updates(area_radius_m=-1.0)
