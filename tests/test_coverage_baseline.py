"""Tests for the coverage-based (CrowdRecruiter-style) baseline."""

from __future__ import annotations

import pytest

from repro.baselines.coverage import CoverageFramework
from repro.cellular.network import CellularNetwork
from repro.environment.geometry import Point
from repro.sim.engine import Simulator
from tests.conftest import make_device
from tests.test_baselines import CENTER, make_spec


def make_framework(sim, devices, **kwargs):
    return CoverageFramework(sim, CellularNetwork(sim), devices, **kwargs)


class TestRecruitment:
    def test_recruits_devices_likely_in_region(self):
        sim = Simulator()
        inside = [make_device(sim, f"in{i}", position=CENTER) for i in range(3)]
        outside = [
            make_device(sim, f"out{i}", position=Point(9000.0, 9000.0))
            for i in range(3)
        ]
        framework = make_framework(sim, inside + outside)
        task = make_spec(spatial_density=2)
        framework.add_task(task)
        plan = framework.plans[task.task_id]
        assert set(plan.recruited) <= {"in0", "in1", "in2"}
        assert plan.expected_coverage >= 2.0

    def test_presence_probability_bounds(self):
        sim = Simulator()
        device = make_device(sim, "d", position=CENTER)
        framework = make_framework(sim, [device])
        task = make_spec()
        assert framework._presence_probability(device, task) == 1.0
        far = make_device(sim, "far", position=Point(9000.0, 9000.0))
        assert framework._presence_probability(far, task) == 0.0

    def test_devices_without_sensor_not_recruited(self):
        sim = Simulator()
        from repro.devices.profiles import profile_by_model

        nobaro = make_device(
            sim, "nobaro", position=CENTER, profile=profile_by_model("Moto E")
        )
        ok = make_device(sim, "ok", position=CENTER)
        framework = make_framework(sim, [nobaro, ok])
        task = make_spec(spatial_density=1)
        framework.add_task(task)
        assert framework.plans[task.task_id].recruited == ["ok"]

    def test_parameter_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            make_framework(sim, [], history_samples=0)
        with pytest.raises(ValueError):
            make_framework(sim, [], coverage_margin=0.0)


class TestCampaignBehaviour:
    def test_recruited_cohort_uploads_every_tick(self):
        sim = Simulator()
        devices = [make_device(sim, f"d{i}", position=CENTER) for i in range(4)]
        framework = make_framework(sim, devices)
        framework.add_task(make_spec(spatial_density=2, sampling_duration_s=1800.0))
        sim.run(until=1900.0)
        # Stationary in-region devices: cohort of 2 × 3 ticks.
        assert framework.stats.uploads == 6
        assert framework.stats.data_points_delivered == 6
        assert framework.coverage_shortfalls == 0

    def test_shortfall_when_recruits_wander_off(self):
        sim = Simulator()

        class Leaver:
            def __init__(self, leave_at):
                self._leave_at = leave_at

            def position_at(self, time):
                return CENTER if time < self._leave_at else Point(9000.0, 9000.0)

        device = make_device(sim, "d0", position=CENTER)
        device.mobility = Leaver(leave_at=500.0)
        framework = make_framework(sim, [device])
        framework.add_task(make_spec(spatial_density=1, sampling_duration_s=1800.0))
        sim.run(until=1900.0)
        # Tick at t=0 covered; ticks at 600 and 1200 missed entirely —
        # the non-adaptive recruitment failure mode.
        assert framework.stats.uploads == 1
        assert framework.coverage_shortfalls == 2

    def test_energy_cost_is_cold_per_upload(self):
        sim = Simulator()
        device = make_device(sim, "d0", position=CENTER)
        framework = make_framework(sim, [device])
        framework.add_task(make_spec(spatial_density=1, sampling_duration_s=1800.0))
        sim.run(until=1900.0)
        cold = device.modem.profile.cold_upload_energy_j(600)
        assert device.crowdsensing_energy_j() == pytest.approx(
            3 * (cold + 0.022), rel=0.02
        )

    def test_unrecruited_devices_spend_nothing(self):
        sim = Simulator()
        inside = make_device(sim, "in0", position=CENTER)
        spare = make_device(sim, "in1", position=CENTER)
        framework = make_framework(sim, [inside, spare])
        framework.add_task(make_spec(spatial_density=1, sampling_duration_s=600.0))
        sim.run(until=700.0)
        recruited = framework.plans[framework.tasks[0].task_id].recruited
        assert len(recruited) == 1
        others = {d.device_id for d in framework.devices} - set(recruited)
        for device in framework.devices:
            if device.device_id in others:
                assert device.crowdsensing_energy_j() == 0.0
