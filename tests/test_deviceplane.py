"""Boundary semantics of the struct-of-arrays device plane.

Every test here runs against *both* plane implementations (object
reference and numpy vector), pinning the batched RRC transition
semantics at their edges: tail expiry exactly on a tick, a transfer
completion and a tail expiry landing in the same batched step, the
zero-device fleet, and the marginal-energy arithmetic cross-validated
against the real per-device :class:`repro.cellular.rrc.RadioModem`.
"""

from __future__ import annotations

import math

import pytest

from repro.cellular.power import LTE_POWER_PROFILE, THREEG_POWER_PROFILE
from repro.cellular.rrc import RadioModem, TailPolicy
from repro.cellular.packets import TrafficCategory
from repro.core.deviceplane import (
    ACTIVE,
    IDLE,
    NEVER,
    PLANE_ENV_VAR,
    TAIL,
    CampaignSpec,
    FleetSpec,
    PlaneDriver,
    SensingTask,
    default_campaign,
    default_plane_kind,
    make_plane,
    run_campaign,
)
from repro.sim.engine import Simulator

PLANES = ("object", "vector")
PROFILE = LTE_POWER_PROFILE
UPLOAD_BYTES = 1024
TRANSFER_S = PROFILE.transfer_time(UPLOAD_BYTES)


def small_spec(devices: int = 4, **overrides) -> FleetSpec:
    defaults = dict(
        devices=devices,
        seed=9,
        width_m=1000.0,
        height_m=1000.0,
        sensor_fraction=1.0,
    )
    defaults.update(overrides)
    return FleetSpec(**defaults)


class TestFleetSpec:
    def test_rejects_negative_devices(self):
        with pytest.raises(ValueError):
            FleetSpec(devices=-1)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            FleetSpec(devices=1, width_m=0.0)

    def test_rejects_bad_sensor_fraction(self):
        with pytest.raises(ValueError):
            FleetSpec(devices=1, sensor_fraction=1.5)

    def test_rejects_staged_tail_profiles(self):
        # The plane models flat tails only; 3G's staged tail (FACH/DCH)
        # must stay on the object-per-device modem.
        with pytest.raises(ValueError):
            FleetSpec(devices=1, profile=THREEG_POWER_PROFILE)

    def test_device_ids_sort_like_indices(self):
        spec = FleetSpec(devices=120)
        ids = [spec.device_id(i) for i in range(spec.devices)]
        assert ids == sorted(ids)
        assert len(set(ids)) == spec.devices

    def test_initial_state_is_deterministic(self):
        a = FleetSpec(devices=20, seed=3).initial_state()
        b = FleetSpec(devices=20, seed=3).initial_state()
        assert a == b
        c = FleetSpec(devices=20, seed=4).initial_state()
        assert a != c


class TestMakePlane:
    def test_explicit_kinds(self):
        spec = small_spec()
        assert make_plane(spec, kind="object").kind == "object"
        assert make_plane(spec, kind="vector").kind == "vector"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_plane(small_spec(), kind="quantum")

    def test_env_toggle(self, monkeypatch):
        monkeypatch.setenv(PLANE_ENV_VAR, "object")
        assert default_plane_kind() == "object"
        assert make_plane(small_spec()).kind == "object"
        monkeypatch.setenv(PLANE_ENV_VAR, "vector")
        assert make_plane(small_spec()).kind == "vector"

    def test_env_toggle_invalid_value(self, monkeypatch):
        monkeypatch.setenv(PLANE_ENV_VAR, "both")
        with pytest.raises(ValueError):
            default_plane_kind()

    def test_default_prefers_vector(self, monkeypatch):
        monkeypatch.delenv(PLANE_ENV_VAR, raising=False)
        assert default_plane_kind() == "vector"


@pytest.mark.parametrize("kind", PLANES)
class TestBatchedTransitions:
    def test_cold_upload_enters_busy_then_tail(self, kind):
        plane = make_plane(small_spec(), kind=kind)
        plane.begin_uploads([0], UPLOAD_BYTES)
        assert plane.state_codes()[0] == ACTIVE
        busy_until = PROFILE.promotion_s + TRANSFER_S
        plane.advance_to(busy_until + 0.001)
        assert plane.state_codes()[0] == TAIL
        remaining = plane.tail_remaining()[0]
        assert 0.0 < remaining < PROFILE.tail_s

    def test_tail_expiry_exactly_on_tick(self, kind):
        # The deadline comparison is <=: a batch step landing exactly
        # on the tail deadline demotes the radio on that very tick.
        plane = make_plane(small_spec(), kind=kind)
        plane.begin_uploads([0], UPLOAD_BYTES)
        busy_until = PROFILE.promotion_s + TRANSFER_S
        plane.advance_to(busy_until)  # transfer completes exactly now
        assert plane.state_codes()[0] == TAIL
        deadline = busy_until + PROFILE.tail_s
        # One epsilon before the deadline: still in tail.
        plane.advance_to(deadline - 1e-9)
        assert plane.state_codes()[0] == TAIL
        transitions = plane.advance_to(deadline)  # exactly on the tick
        assert plane.state_codes()[0] == IDLE
        assert transitions == 1
        assert plane.tail_remaining()[0] == 0.0

    def test_promote_and_demote_in_one_batch(self, kind):
        # Device 0's transfer completes (promote to TAIL) in the same
        # advance_to that expires device 1's tail (demote to IDLE).
        plane = make_plane(small_spec(), kind=kind)
        plane.begin_uploads([1], UPLOAD_BYTES)
        busy_1 = PROFILE.promotion_s + TRANSFER_S
        plane.advance_to(busy_1)  # device 1 enters its tail
        assert plane.state_codes()[1] == TAIL
        deadline_1 = busy_1 + PROFILE.tail_s
        plane.begin_uploads([0], UPLOAD_BYTES)
        busy_0 = plane.now + PROFILE.promotion_s + TRANSFER_S
        assert busy_0 < deadline_1
        transitions = plane.advance_to(deadline_1)
        states = plane.state_codes()
        assert states[0] == TAIL and states[1] == IDLE
        assert transitions == 2

    def test_transfer_and_tail_both_elapse_in_one_step(self, kind):
        # A batch step that jumps past busy-end AND tail-end counts
        # both transitions and lands the radio in IDLE directly.
        plane = make_plane(small_spec(), kind=kind)
        plane.begin_uploads([0], UPLOAD_BYTES)
        busy_until = PROFILE.promotion_s + TRANSFER_S
        transitions = plane.advance_to(busy_until + PROFILE.tail_s + 5.0)
        assert plane.state_codes()[0] == IDLE
        assert transitions == 2
        # last_comm is stamped at the transfer completion, not at the
        # (later) observation instant.
        assert plane.snapshot()["last_comm"][0] == busy_until

    def test_advance_backwards_raises(self, kind):
        plane = make_plane(small_spec(), kind=kind)
        plane.advance_to(10.0)
        with pytest.raises(ValueError):
            plane.advance_to(9.0)

    def test_advance_to_now_is_allowed(self, kind):
        plane = make_plane(small_spec(), kind=kind)
        plane.advance_to(10.0)
        plane.advance_to(10.0)
        assert plane.now == 10.0

    def test_mobility_wraps_toroidally(self, kind):
        spec = small_spec(devices=16)
        plane = make_plane(spec, kind=kind)
        plane.advance_to(10_000.0)  # far enough that everything wrapped
        for _, x, y in plane.device_positions():
            assert 0.0 <= x < spec.width_m
            assert 0.0 <= y < spec.height_m

    def test_last_comm_starts_never(self, kind):
        plane = make_plane(small_spec(), kind=kind)
        assert all(v == NEVER for v in plane.snapshot()["last_comm"])


@pytest.mark.parametrize("kind", PLANES)
class TestZeroDeviceFleet:
    def test_all_operations_are_noops(self, kind):
        plane = make_plane(small_spec(devices=0), kind=kind)
        assert plane.n == 0
        assert plane.advance_to(60.0) == 0
        assert list(plane.tail_mask()) == []
        assert plane.qualification(0.0, 0.0, 100.0) == []
        assert plane.qualification(0.0, 0.0, 100.0, use_index=False) == []
        assert plane.rank([], CampaignSpec(
            tasks=(SensingTask(0.0, 0.0, 1.0, 1),)
        ).weights) == []
        plane.begin_uploads([], UPLOAD_BYTES)
        assert plane.pending_due(0.0) == []
        assert plane.total_crowdsensing_energy_j() == 0.0

    def test_campaign_is_all_unsatisfiable(self, kind):
        spec = small_spec(devices=0)
        result = run_campaign(
            make_plane(spec, kind=kind), default_campaign(spec), rounds=3
        )
        assert result.unsatisfiable == 3 * 4
        assert all(r.selected == () for r in result.selection_log)
        assert result.uploads == 0


@pytest.mark.parametrize("kind", PLANES)
class TestModemCrossValidation:
    """The plane's closed-form marginal energies must match what the
    real event-driven modem charges for the same upload schedule."""

    def _modem_charges(self, schedule):
        sim = Simulator(seed=0)
        modem = RadioModem(
            sim, PROFILE, "dut", tail_policy=TailPolicy.NO_RESET
        )
        charges = []
        modem.add_energy_listener(lambda cat, j, reason: charges.append(j))
        for at in schedule:
            sim.run(until=at)
            modem.transmit(UPLOAD_BYTES, TrafficCategory.CROWDSENSING)
        sim.run(until=schedule[-1] + 60.0)
        return charges

    def _plane_charges(self, kind, schedule):
        plane = make_plane(
            small_spec(devices=1, tail_policy=TailPolicy.NO_RESET), kind=kind
        )
        charges = []
        for at in schedule:
            plane.advance_to(at)
            before = plane.crowdsensing_energy()[0]
            plane.begin_uploads([0], UPLOAD_BYTES)
            charges.append(plane.crowdsensing_energy()[0] - before)
        return charges

    @pytest.mark.parametrize(
        "schedule",
        [
            pytest.param([0.0], id="cold"),
            pytest.param([0.0, 5.0], id="cold-then-tail-resume"),
            pytest.param([0.0, 0.1], id="cold-then-active-piggyback"),
            pytest.param([0.0, 5.0, 8.0], id="two-tail-resumes"),
            pytest.param([0.0, 40.0], id="cold-twice"),
        ],
    )
    def test_marginal_energy_matches_modem(self, kind, schedule):
        modem = self._modem_charges(schedule)
        plane = self._plane_charges(kind, schedule)
        assert len(modem) == len(plane)
        for expected, actual in zip(modem, plane):
            assert actual == pytest.approx(expected, rel=1e-12, abs=1e-12)

    def test_reset_policy_pays_tail_extension(self, kind):
        # Under RESET a tail upload restarts the 11.5 s timer, so its
        # marginal exceeds the NO_RESET marginal at the same instant.
        def charge(policy):
            plane = make_plane(
                small_spec(devices=1, tail_policy=policy), kind=kind
            )
            plane.begin_uploads([0], UPLOAD_BYTES)
            plane.advance_to(PROFILE.promotion_s + TRANSFER_S + 5.0)
            assert plane.state_codes()[0] == TAIL
            before = plane.crowdsensing_energy()[0]
            plane.begin_uploads([0], UPLOAD_BYTES)
            return plane.crowdsensing_energy()[0] - before

        assert charge(TailPolicy.RESET) > charge(TailPolicy.NO_RESET)


@pytest.mark.parametrize("kind", PLANES)
class TestPendingUploads:
    def test_pending_waits_for_defer_window(self, kind):
        plane = make_plane(small_spec(), kind=kind)
        plane.set_pending([0])
        assert plane.pending_due(120.0) == []  # idle, patience not up
        plane.advance_to(119.0)
        assert plane.pending_due(120.0) == []
        plane.advance_to(120.0)
        assert plane.pending_due(120.0) == [0]  # patience boundary is >=
        assert plane.pending_due(120.0) == []  # flag cleared

    def test_open_tail_flushes_immediately(self, kind):
        plane = make_plane(small_spec(), kind=kind)
        plane.begin_uploads([0], UPLOAD_BYTES)
        plane.advance_to(PROFILE.promotion_s + TRANSFER_S + 1.0)
        assert plane.state_codes()[0] == TAIL
        plane.set_pending([0, 1])
        assert plane.pending_due(120.0) == [0]  # tail open; 1 still waits

    def test_set_pending_keeps_earliest_timestamp(self, kind):
        plane = make_plane(small_spec(), kind=kind)
        plane.set_pending([0])
        plane.advance_to(100.0)
        plane.set_pending([0])  # re-flagging must not reset the clock
        plane.advance_to(120.0)
        assert plane.pending_due(120.0) == [0]


@pytest.mark.parametrize("kind", PLANES)
class TestQualificationAndRanking:
    def test_unequipped_devices_never_qualify(self, kind):
        spec = small_spec(devices=30, sensor_fraction=0.0)
        plane = make_plane(spec, kind=kind)
        assert plane.qualification(500.0, 500.0, 1e6) == []

    def test_indexed_matches_scan(self, kind):
        plane = make_plane(small_spec(devices=60), kind=kind)
        plane.advance_to(300.0)
        for radius in (0.0, 150.0, 400.0, 2000.0):
            indexed = plane.qualification(500.0, 500.0, radius)
            scanned = plane.qualification(500.0, 500.0, radius, use_index=False)
            assert list(indexed) == list(scanned)

    def test_rank_prefers_less_selected_devices(self, kind):
        spec = small_spec(devices=3)
        plane = make_plane(spec, kind=kind)
        weights = CampaignSpec(tasks=(SensingTask(0, 0, 1, 1),)).weights
        baseline = plane.rank([0, 1, 2], weights)
        plane.mark_selected([baseline[0]])
        reranked = plane.rank([0, 1, 2], weights)
        assert reranked[-1] == baseline[0]

    def test_rank_respects_selection_cap(self, kind):
        plane = make_plane(small_spec(devices=2), kind=kind)
        weights = CampaignSpec(tasks=(SensingTask(0, 0, 1, 1),)).weights
        plane.mark_selected([0])
        plane.mark_selected([0])
        assert 0 not in plane.rank([0, 1], weights, max_selections=2)
        assert 0 in plane.rank([0, 1], weights, max_selections=3)

    def test_critical_battery_is_ineligible(self, kind):
        spec = small_spec(devices=1, critical_battery_pct=101.0)
        plane = make_plane(spec, kind=kind)
        weights = CampaignSpec(tasks=(SensingTask(0, 0, 1, 1),)).weights
        assert plane.rank([0], weights) == []


class TestPlaneDriver:
    @pytest.mark.parametrize("kind", PLANES)
    def test_driver_credits_device_events(self, kind):
        spec = small_spec(devices=40)
        campaign = default_campaign(spec, density=2)
        sim = Simulator(seed=1)
        driver = PlaneDriver(
            sim, make_plane(spec, kind=kind), campaign, rounds=6
        )
        sim.run()
        assert sim.events_processed == 6  # one heap event per round
        assert sim.device_events == driver.result.device_events
        assert sim.device_events >= 6 * spec.devices  # ≥ mobility work

    def test_driver_matches_direct_campaign(self):
        spec = small_spec(devices=40)
        campaign = default_campaign(spec, density=2)
        sim = Simulator(seed=1)
        driver = PlaneDriver(sim, make_plane(spec, "vector"), campaign, rounds=6)
        sim.run()
        direct = run_campaign(make_plane(spec, "vector"), campaign, rounds=6)
        assert driver.result.selection_log == direct.selection_log
        assert driver.result.device_events == direct.device_events
        assert driver.result.cold_uploads == direct.cold_uploads
        assert driver.result.tail_uploads == direct.tail_uploads

    def test_note_device_events_rejects_negative(self):
        sim = Simulator(seed=0)
        with pytest.raises(ValueError):
            sim.note_device_events(-1)
        sim.note_device_events(0)
        sim.note_device_events(5)
        assert sim.device_events == 5


class TestCampaignAccounting:
    @pytest.mark.parametrize("kind", PLANES)
    def test_energy_total_is_fsum_of_ledger(self, kind):
        spec = small_spec(devices=30)
        plane = make_plane(spec, kind=kind)
        run_campaign(plane, default_campaign(spec, density=2), rounds=10)
        ledger = plane.crowdsensing_energy()
        assert plane.total_crowdsensing_energy_j() == math.fsum(ledger)
        assert plane.total_crowdsensing_energy_j() > 0.0

    @pytest.mark.parametrize("kind", PLANES)
    def test_upload_taxonomy_sums(self, kind):
        spec = small_spec(devices=30)
        plane = make_plane(spec, kind=kind)
        result = run_campaign(plane, default_campaign(spec, density=2), rounds=10)
        assert result.uploads == plane.uploads
        assert plane.cold_uploads + plane.tail_uploads <= plane.uploads
        counts = result.selected_counts()
        assert sum(counts.values()) == result.selections
