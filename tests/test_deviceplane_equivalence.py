"""Property tests: the vector plane is bit-identical to the object plane.

The contract (``docs/deviceplane.md``): for any fleet, campaign, and
tail policy, the numpy struct-of-arrays plane and the scalar
object-per-device plane produce *exactly equal* selection logs,
per-device state snapshots, and ``math.fsum`` energy totals — ``==``
on floats, never ``approx``.  This is the same discipline PR 4
established for the spatial index (indexed == scanned, bit for bit),
extended across the whole device hot path.

Campaign shapes are drawn to cover all three upload arms: long rounds
exercise cold uploads, short rounds (under the 11.5 s LTE tail)
exercise tail-resume, and sub-second rounds over tiny fleets exercise
active-window piggybacking.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellular.rrc import TailPolicy
from repro.core.config import SelectorWeights
from repro.core.datastores import DeviceRecord
from repro.core.deviceplane import (
    NEVER,
    CampaignSpec,
    FleetSpec,
    PlaneDriver,
    SensingTask,
    make_plane,
    run_campaign,
)
from repro.core.selector import DeviceSelector
from repro.sim.engine import Simulator

#: Round periods chosen to hit cold (60 s), tail-resume (5 s), and
#: active-piggyback (0.25 s, paired with a long transfer) upload arms.
ROUND_PERIODS = (60.0, 5.0, 0.25)

fleet_specs = st.builds(
    FleetSpec,
    devices=st.integers(min_value=0, max_value=60),
    seed=st.integers(min_value=0, max_value=2**16),
    width_m=st.sampled_from((800.0, 2000.0, 9000.0)),
    height_m=st.sampled_from((800.0, 2000.0)),
    sensor_fraction=st.sampled_from((0.0, 0.7, 1.0)),
    tail_policy=st.sampled_from((TailPolicy.NO_RESET, TailPolicy.RESET)),
)

campaign_specs = st.builds(
    CampaignSpec,
    tasks=st.lists(
        st.builds(
            SensingTask,
            center_x=st.sampled_from((200.0, 700.0, 1500.0)),
            center_y=st.sampled_from((200.0, 700.0)),
            radius_m=st.sampled_from((0.0, 300.0, 900.0, 3000.0)),
            devices_needed=st.integers(min_value=1, max_value=6),
        ),
        min_size=1,
        max_size=3,
    ).map(tuple),
    round_period_s=st.sampled_from(ROUND_PERIODS),
    upload_bytes=st.sampled_from((256, 1024, 250_000)),
    tail_defer_s=st.sampled_from((0.0, 60.0, 120.0)),
    max_selections_per_epoch=st.sampled_from((None, 2, 5)),
)


def both_planes(spec: FleetSpec):
    return make_plane(spec, kind="object"), make_plane(spec, kind="vector")


@given(spec=fleet_specs, campaign=campaign_specs,
       rounds=st.integers(min_value=1, max_value=25))
@settings(max_examples=60, deadline=None)
def test_campaigns_are_bit_identical(spec, campaign, rounds):
    obj_plane, vec_plane = both_planes(spec)
    obj = run_campaign(obj_plane, campaign, rounds)
    vec = run_campaign(vec_plane, campaign, rounds)

    assert obj.selection_log == vec.selection_log
    assert obj.device_events == vec.device_events
    assert obj.transitions == vec.transitions
    assert (obj.uploads, obj.cold_uploads, obj.tail_uploads) == (
        vec.uploads, vec.cold_uploads, vec.tail_uploads
    )
    assert obj.unsatisfiable == vec.unsatisfiable

    obj_snap, vec_snap = obj_plane.snapshot(), vec_plane.snapshot()
    assert set(obj_snap) == set(vec_snap)
    for key in obj_snap:
        assert obj_snap[key] == vec_snap[key], key  # exact, no tolerance

    # Energy totals: fsum over identical per-device ledgers.
    assert (
        obj_plane.total_crowdsensing_energy_j()
        == vec_plane.total_crowdsensing_energy_j()
    )


@given(spec=fleet_specs, campaign=campaign_specs,
       rounds=st.integers(min_value=0, max_value=12),
       radius=st.sampled_from((0.0, 250.0, 800.0, 5000.0)),
       cx=st.floats(min_value=0.0, max_value=2000.0),
       cy=st.floats(min_value=0.0, max_value=2000.0))
@settings(max_examples=60, deadline=None)
def test_indexed_equals_scanned_on_both_planes(
    spec, campaign, rounds, radius, cx, cy
):
    # PR 4's pattern, lifted to the plane: the grid-indexed
    # qualification probe must equal the brute-force scan exactly, on
    # either plane, at any instant of a campaign.
    for plane in both_planes(spec):
        run_campaign(plane, campaign, rounds)
        indexed = plane.qualification(cx, cy, radius, use_index=True)
        scanned = plane.qualification(cx, cy, radius, use_index=False)
        assert list(indexed) == list(scanned)


@given(spec=fleet_specs, campaign=campaign_specs,
       rounds=st.integers(min_value=1, max_value=10))
@settings(max_examples=40, deadline=None)
def test_planes_agree_between_rounds_not_just_at_the_end(
    spec, campaign, rounds
):
    # Lockstep variant: compare snapshots after *every* round, so a
    # transient divergence cannot cancel out by the final round.
    from repro.core.deviceplane import CampaignResult, run_round

    obj_plane, vec_plane = both_planes(spec)
    obj_result, vec_result = CampaignResult(rounds), CampaignResult(rounds)
    for round_index in range(rounds):
        run_round(obj_plane, campaign, round_index, obj_result)
        run_round(vec_plane, campaign, round_index, vec_result)
        assert obj_plane.snapshot() == vec_plane.snapshot(), round_index
        assert obj_result.selection_log == vec_result.selection_log


@given(spec=fleet_specs.filter(lambda s: s.devices > 0),
       rounds=st.integers(min_value=1, max_value=8),
       seed=st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_driver_equals_direct_campaign(spec, rounds, seed):
    # Riding the discrete-event engine (one heap event per round) must
    # change nothing about the outcome versus the straight-line loop.
    campaign = CampaignSpec(
        tasks=(SensingTask(spec.width_m / 2, spec.height_m / 2, 900.0, 2),),
        round_period_s=5.0,
        tail_defer_s=0.0,
    )
    sim = Simulator(seed=seed)
    driver = PlaneDriver(sim, make_plane(spec, "vector"), campaign, rounds)
    sim.run()
    direct = run_campaign(make_plane(spec, "vector"), campaign, rounds)
    assert driver.result.selection_log == direct.selection_log
    assert driver.result.device_events == direct.device_events
    assert sim.device_events == direct.device_events


@given(spec=fleet_specs.filter(lambda s: s.devices > 0),
       campaign=campaign_specs,
       rounds=st.integers(min_value=1, max_value=10))
@settings(max_examples=40, deadline=None)
def test_plane_ranking_matches_device_selector(spec, campaign, rounds):
    # Bridge to the production selector: rebuild each plane device as a
    # DeviceRecord and rank through DeviceSelector.  Zero-padded string
    # ids sort like indices, so the (score, id) order must equal the
    # plane's (score, index) order exactly.
    plane = make_plane(spec, kind="vector")
    run_campaign(plane, campaign, rounds)
    snap = plane.snapshot()
    records = []
    for i in range(spec.devices):
        records.append(
            DeviceRecord(
                device_id=spec.device_id(i),
                imei_hash=f"h{i}",
                device_model="soa",
                energy_budget_j=spec.energy_budget_j,
                critical_battery_pct=spec.critical_battery_pct,
                battery_pct=snap["battery_pct"][i],
                energy_used_j=snap["energy_used_j"][i],
                times_selected=snap["times_selected"][i],
                last_comm_time=(
                    None if snap["last_comm"][i] == NEVER
                    else snap["last_comm"][i]
                ),
            )
        )
    selector = DeviceSelector(
        campaign.weights,
        max_selections_per_epoch=campaign.max_selections_per_epoch,
    )
    expected = [
        s.device_id for s in selector.rank(records, plane.now)
    ]
    actual = [
        spec.device_id(i)
        for i in plane.rank(
            list(range(spec.devices)),
            campaign.weights,
            campaign.max_selections_per_epoch,
        )
    ]
    assert actual == expected


@given(seed=st.integers(min_value=0, max_value=2**20))
@settings(max_examples=25, deadline=None)
def test_soak_invariant_is_quiet_on_healthy_planes(seed):
    from repro.soak.invariants import check_plane_equivalence

    assert check_plane_equivalence(seed, devices=24, rounds=8) == []
