"""Unit tests for the battery model and the energy ledger."""

from __future__ import annotations

import pytest

from repro.cellular.packets import TrafficCategory
from repro.devices.battery import (
    Battery,
    TWO_PERCENT_BUDGET_J,
    capacity_joules,
)
from repro.devices.energy import EnergyLedger


class TestCapacity:
    def test_nominal_capacity(self):
        # 1800 mAh × 3.82 V = 1.8 × 3600 × 3.82 ≈ 24,753.6 J
        assert capacity_joules(1800.0, 3.82) == pytest.approx(24753.6)

    def test_two_percent_budget_is_the_papers_496j(self):
        assert TWO_PERCENT_BUDGET_J == pytest.approx(495.07, abs=1.0)

    def test_invalid_rating(self):
        with pytest.raises(ValueError):
            capacity_joules(0.0, 3.8)


class TestBattery:
    def test_full_battery(self):
        battery = Battery()
        assert battery.level_pct == pytest.approx(100.0)
        assert not battery.empty

    def test_partial_initial_level(self):
        battery = Battery(initial_level_pct=50.0)
        assert battery.level_pct == pytest.approx(50.0)
        assert battery.remaining_j == pytest.approx(battery.capacity_j / 2)

    def test_invalid_initial_level(self):
        with pytest.raises(ValueError):
            Battery(initial_level_pct=101.0)

    def test_drain(self):
        battery = Battery()
        battery.drain(1000.0)
        assert battery.drained_j == 1000.0
        assert battery.remaining_j == pytest.approx(battery.capacity_j - 1000.0)

    def test_drain_clamps_at_empty(self):
        battery = Battery(capacity_mah=10.0, voltage_v=1.0)  # 36 J
        battery.drain(100.0)
        assert battery.remaining_j == 0.0
        assert battery.empty
        assert battery.level_pct == 0.0

    def test_negative_drain_rejected(self):
        with pytest.raises(ValueError):
            Battery().drain(-1.0)

    def test_percent_of_capacity(self):
        battery = Battery(capacity_mah=1800.0, voltage_v=3.82)
        assert battery.percent_of_capacity(battery.capacity_j) == pytest.approx(100.0)
        assert battery.percent_of_capacity(0.0) == 0.0

    def test_percent_of_capacity_negative_rejected(self):
        with pytest.raises(ValueError):
            Battery().percent_of_capacity(-1.0)


class TestEnergyLedger:
    def test_charges_accumulate_per_category(self):
        ledger = EnergyLedger()
        ledger.charge(TrafficCategory.CROWDSENSING, 1.0, "upload")
        ledger.charge(TrafficCategory.CROWDSENSING, 2.0, "upload")
        ledger.charge(TrafficCategory.BACKGROUND, 5.0, "session")
        assert ledger.crowdsensing_j() == pytest.approx(3.0)
        assert ledger.total(TrafficCategory.BACKGROUND) == pytest.approx(5.0)
        assert ledger.grand_total_j() == pytest.approx(8.0)
        assert ledger.entries == 3

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger().charge(TrafficCategory.CONTROL, -0.1, "bad")

    def test_breakdown_by_reason(self):
        ledger = EnergyLedger()
        ledger.charge(TrafficCategory.CROWDSENSING, 1.0, "cold_upload")
        ledger.charge(TrafficCategory.CROWDSENSING, 0.5, "sensor_sample")
        ledger.charge(TrafficCategory.CROWDSENSING, 1.5, "cold_upload")
        breakdown = ledger.breakdown(TrafficCategory.CROWDSENSING)
        assert breakdown == {
            "cold_upload": pytest.approx(2.5),
            "sensor_sample": pytest.approx(0.5),
        }

    def test_breakdown_excludes_other_categories(self):
        ledger = EnergyLedger()
        ledger.charge(TrafficCategory.BACKGROUND, 9.0, "session")
        assert ledger.breakdown(TrafficCategory.CROWDSENSING) == {}

    def test_as_rows_sorted(self):
        ledger = EnergyLedger()
        ledger.charge(TrafficCategory.CROWDSENSING, 1.0, "b")
        ledger.charge(TrafficCategory.BACKGROUND, 2.0, "a")
        rows = ledger.as_rows()
        assert rows[0][0] == "background"
        assert rows[1] == ("crowdsensing", "b", 1.0)

    def test_empty_ledger(self):
        ledger = EnergyLedger()
        assert ledger.crowdsensing_j() == 0.0
        assert ledger.grand_total_j() == 0.0
