"""Unit tests for the sensor suite."""

from __future__ import annotations

import random

import pytest

from repro.devices.sensors import (
    SENSOR_SPECS,
    SensorSuite,
    SensorType,
)


def make_suite(**kwargs) -> SensorSuite:
    return SensorSuite(random.Random(42), **kwargs)


class TestSensorSpecs:
    def test_warden_power_table(self):
        """The paper quotes these Galaxy-S4 figures from Warden."""
        assert SENSOR_SPECS[SensorType.ACCELEROMETER].power_mw == 21.0
        assert SENSOR_SPECS[SensorType.GYROSCOPE].power_mw == 130.0
        assert SENSOR_SPECS[SensorType.BAROMETER].power_mw == 110.0
        assert SENSOR_SPECS[SensorType.GPS].power_mw == 176.0
        assert SENSOR_SPECS[SensorType.MICROPHONE].power_mw == 101.0
        assert SENSOR_SPECS[SensorType.CAMERA].power_mw > 1000.0

    def test_sample_energy(self):
        spec = SENSOR_SPECS[SensorType.BAROMETER]
        assert spec.sample_energy_j() == pytest.approx(0.110 * 0.2)

    def test_gps_fix_is_expensive(self):
        gps = SENSOR_SPECS[SensorType.GPS].sample_energy_j()
        barometer = SENSOR_SPECS[SensorType.BAROMETER].sample_energy_j()
        assert gps > 50 * barometer


class TestSensorSuite:
    def test_full_suite_by_default(self):
        suite = make_suite()
        for sensor in SensorType:
            assert suite.has(sensor)

    def test_restricted_suite(self):
        suite = make_suite(equipped={SensorType.ACCELEROMETER})
        assert suite.has(SensorType.ACCELEROMETER)
        assert not suite.has(SensorType.BAROMETER)

    def test_sampling_missing_sensor_raises(self):
        suite = make_suite(equipped={SensorType.ACCELEROMETER})
        with pytest.raises(KeyError):
            suite.sample(SensorType.BAROMETER, 0.0)

    def test_unknown_sensor_in_equipped_rejected(self):
        with pytest.raises(ValueError):
            SensorSuite(random.Random(0), equipped={"not-a-sensor"})

    def test_barometer_reading_plausible(self):
        suite = make_suite()
        for t in (0.0, 3600.0, 7200.0):
            reading = suite.sample(SensorType.BAROMETER, t)
            assert 1000.0 < reading.value < 1025.0
            assert reading.sensor_type is SensorType.BAROMETER
            assert reading.time == t

    def test_barometer_weather_drift(self):
        """Readings hours apart must differ by more than noise alone."""
        suite = make_suite()
        early = [suite.sample(SensorType.BAROMETER, 0.0).value for _ in range(20)]
        later = [
            suite.sample(SensorType.BAROMETER, 1.5 * 3600.0).value for _ in range(20)
        ]
        drift = abs(sum(later) / 20 - sum(early) / 20)
        assert drift > 1.0

    def test_pressure_bias_applies(self):
        high = SensorSuite(random.Random(1), pressure_bias_hpa=5.0)
        low = SensorSuite(random.Random(1), pressure_bias_hpa=-5.0)
        assert high.sample(SensorType.BAROMETER, 0.0).value > low.sample(
            SensorType.BAROMETER, 0.0
        ).value

    def test_reading_carries_energy(self):
        suite = make_suite()
        reading = suite.sample(SensorType.BAROMETER, 0.0)
        assert reading.energy_j == pytest.approx(
            SENSOR_SPECS[SensorType.BAROMETER].sample_energy_j()
        )

    def test_spec_lookup(self):
        suite = make_suite()
        assert suite.spec(SensorType.GPS).power_mw == 176.0

    def test_spec_lookup_missing_sensor(self):
        suite = make_suite(equipped={SensorType.BAROMETER})
        with pytest.raises(KeyError):
            suite.spec(SensorType.GPS)

    def test_other_sensor_values_generated(self):
        suite = make_suite()
        accel = suite.sample(SensorType.ACCELEROMETER, 0.0)
        assert 9.0 < accel.value < 10.5
        temp = suite.sample(SensorType.THERMOMETER, 0.0)
        assert 15.0 < temp.value < 30.0
        light = suite.sample(SensorType.LIGHT, 0.0)
        assert light.value >= 0.0
        mic = suite.sample(SensorType.MICROPHONE, 0.0)
        assert mic.value >= 20.0

    def test_equipped_returns_copy(self):
        suite = make_suite(equipped={SensorType.BAROMETER})
        equipped = suite.equipped()
        equipped.add(SensorType.GPS)
        assert not suite.has(SensorType.GPS)
