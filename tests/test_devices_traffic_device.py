"""Unit tests for background traffic and the composed SimDevice."""

from __future__ import annotations

import pytest

from repro.cellular.packets import TrafficCategory
from repro.cellular.rrc import RRCState
from repro.devices.device import SimDevice, UserPreferences
from repro.devices.profiles import GALAXY_S4, profile_by_model
from repro.devices.sensors import SensorType
from repro.devices.traffic import HEAVY_USER, LIGHT_USER, TrafficPattern
from repro.environment.geometry import Point
from repro.sim.engine import Simulator
from tests.conftest import make_device


class TestTrafficPattern:
    def test_defaults_valid(self):
        TrafficPattern()

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            TrafficPattern(mean_gap_s=0.0)

    def test_invalid_packets(self):
        with pytest.raises(ValueError):
            TrafficPattern(packets_per_session=0)

    def test_presets(self):
        assert HEAVY_USER.mean_gap_s < TrafficPattern().mean_gap_s
        assert LIGHT_USER.mean_gap_s > TrafficPattern().mean_gap_s


class TestBackgroundTraffic:
    def test_sessions_drive_radio(self):
        sim = Simulator(seed=5)
        device = make_device(sim)
        device.traffic.start(initial_delay=10.0)
        sim.run(until=11.0)
        assert device.traffic.sessions == 1
        assert device.modem.state is not RRCState.IDLE

    def test_session_rate_roughly_matches_mean_gap(self):
        counts = []
        for seed in range(10):
            sim = Simulator(seed=seed)
            device = make_device(
                sim, traffic_pattern=TrafficPattern(mean_gap_s=300.0)
            )
            device.traffic.start()
            sim.run(until=3 * 3600.0)
            counts.append(device.traffic.sessions)
        mean = sum(counts) / len(counts)
        # ~3 h / (300 s + ~session) ≈ 35 sessions; generous tolerance.
        assert 22 <= mean <= 42

    def test_session_listeners_invoked(self):
        sim = Simulator(seed=5)
        device = make_device(sim)
        starts = []
        device.traffic.add_session_listener(starts.append)
        device.traffic.start(initial_delay=3.0)
        sim.run(until=4.0)
        assert starts == [3.0]

    def test_stop_halts_sessions(self):
        sim = Simulator(seed=5)
        device = make_device(sim)
        device.traffic.start(initial_delay=1.0)
        sim.run(until=2.0)
        device.traffic.stop()
        count = device.traffic.sessions
        sim.run(until=3 * 3600.0)
        assert device.traffic.sessions == count

    def test_double_start_rejected(self):
        sim = Simulator(seed=5)
        device = make_device(sim)
        device.traffic.start()
        with pytest.raises(RuntimeError):
            device.traffic.start()

    def test_traffic_charges_background_category(self):
        sim = Simulator(seed=5)
        device = make_device(sim)
        device.traffic.start(initial_delay=1.0)
        sim.run(until=3600.0)
        assert device.ledger.total(TrafficCategory.BACKGROUND) > 0
        assert device.crowdsensing_energy_j() == 0.0


class TestUserPreferences:
    def test_defaults(self):
        prefs = UserPreferences()
        assert prefs.energy_budget_j == 496.0
        assert prefs.critical_battery_pct == 20.0
        assert prefs.participating

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            UserPreferences(energy_budget_j=-1.0)

    def test_invalid_critical_level(self):
        with pytest.raises(ValueError):
            UserPreferences(critical_battery_pct=150.0)


class TestSimDevice:
    def test_imei_hash_is_stable_and_opaque(self):
        sim = Simulator()
        a = make_device(sim, "d1", imei="356938035643809")
        b = SimDevice(sim, "d2", imei="356938035643809")
        assert a.imei_hash == b.imei_hash
        assert "356938" not in a.imei_hash
        assert len(a.imei_hash) == 64

    def test_position_follows_mobility(self):
        sim = Simulator()
        device = make_device(sim, position=Point(7.0, 9.0))
        assert device.position() == Point(7.0, 9.0)

    def test_sample_charges_crowdsensing_and_battery(self):
        sim = Simulator()
        device = make_device(sim)
        before = device.battery.remaining_j
        reading = device.sample(SensorType.BAROMETER)
        assert device.crowdsensing_energy_j() == pytest.approx(reading.energy_j)
        assert device.battery.remaining_j == pytest.approx(before - reading.energy_j)
        assert device.samples_taken == 1

    def test_radio_energy_drains_battery(self):
        sim = Simulator()
        device = make_device(sim)
        before = device.battery.remaining_j
        device.modem.transmit(600, TrafficCategory.CROWDSENSING)
        sim.run(until=30.0)
        drained = before - device.battery.remaining_j
        assert drained == pytest.approx(device.crowdsensing_energy_j())

    def test_profile_battery_used(self):
        sim = Simulator()
        device = make_device(sim, profile=GALAXY_S4)
        expected = 2.6 * 3600.0 * 3.8
        assert device.battery.capacity_j == pytest.approx(expected)

    def test_profile_sensor_restrictions(self):
        sim = Simulator()
        device = make_device(sim, profile=profile_by_model("Moto E"))
        assert not device.sensors.has(SensorType.BAROMETER)
        with pytest.raises(KeyError):
            device.sample(SensorType.BAROMETER)

    def test_over_energy_budget(self):
        sim = Simulator()
        device = make_device(
            sim, preferences=UserPreferences(energy_budget_j=0.01)
        )
        assert not device.over_energy_budget()
        device.sample(SensorType.BAROMETER)
        assert device.over_energy_budget()

    def test_below_critical_battery(self):
        sim = Simulator()
        device = make_device(
            sim,
            initial_battery_pct=15.0,
            preferences=UserPreferences(critical_battery_pct=20.0),
        )
        assert device.below_critical_battery()

    def test_crowdsensing_battery_pct(self):
        sim = Simulator()
        device = make_device(sim)
        device.ledger.charge(TrafficCategory.CROWDSENSING, 247.536, "x")
        assert device.crowdsensing_battery_pct() == pytest.approx(1.0, rel=1e-3)
