"""Tests for diurnal traffic modulation and the diurnal experiment."""

from __future__ import annotations

import pytest

from repro.devices.traffic import TrafficPattern, diurnal_modulator
from repro.experiments import diurnal
from repro.sim.engine import Simulator
from tests.conftest import make_device


class TestDiurnalModulator:
    def test_phases(self):
        modulator = diurnal_modulator()
        assert modulator(3 * 3600.0) == 5.0     # night
        assert modulator(12 * 3600.0) == 1.0    # day
        assert modulator(20 * 3600.0) == 0.6    # evening
        assert modulator(23.75 * 3600.0) == 5.0 # late night

    def test_wraps_past_midnight(self):
        modulator = diurnal_modulator()
        assert modulator(27 * 3600.0) == modulator(3 * 3600.0)

    def test_invalid_factors(self):
        with pytest.raises(ValueError):
            diurnal_modulator(night_factor=0.0)

    def test_traffic_rate_follows_modulation(self):
        def sessions_between(start_h, end_h):
            total = 0
            for seed in range(5):
                sim = Simulator(seed=seed)
                device = make_device(
                    sim, "d", traffic_pattern=TrafficPattern(mean_gap_s=300.0)
                )
                device.traffic.set_gap_modulator(diurnal_modulator())
                device.traffic.start()
                sim.run(until=start_h * 3600.0)
                before = device.traffic.sessions
                sim.run(until=end_h * 3600.0)
                total += device.traffic.sessions - before
            return total

        night = sessions_between(0.0, 4.0)
        day = sessions_between(10.0, 14.0)
        assert day > 2 * night

    def test_set_modulator_none_restores_flat_rate(self):
        sim = Simulator(seed=1)
        device = make_device(sim, "d")
        device.traffic.set_gap_modulator(diurnal_modulator())
        device.traffic.set_gap_modulator(None)
        assert device.traffic._current_mean_gap() == pytest.approx(
            device.traffic._pattern.mean_gap_s
        )


class TestDiurnalExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return diurnal.run(seed=7)

    def test_six_windows(self, rows):
        assert len(rows) == 6
        assert rows[0].window_label == "00:00-04:00"

    def test_sense_aid_always_wins(self, rows):
        for row in rows:
            assert row.sense_aid_j < row.periodic_j

    def test_savings_track_phone_usage(self, rows):
        """Quiet nights starve the tail-riding: the overnight saving is
        the smallest of the day."""
        night = rows[0].saving_pct
        waking = [r.saving_pct for r in rows[2:]]
        assert min(waking) > night

    def test_periodic_roughly_flat(self, rows):
        """Periodic pays per tick regardless of user activity."""
        energies = [r.periodic_j for r in rows]
        assert max(energies) < 1.5 * min(energies)
