"""Edge-case sweep across modules: small behaviours the focused test
files don't reach."""

from __future__ import annotations

import pytest

from repro.baselines.common import BaselineCollector
from repro.cellular.drx import LTE_DRX
from repro.cellular.network import CellularNetwork
from repro.cellular.packets import Message, MessageKind, TrafficCategory
from repro.cellular.rrc import RRCState, TailPolicy
from repro.core.config import ServerMode
from repro.core.federation import EdgeRegionSpec, FederatedSenseAid
from repro.devices.profiles import population_mix
from repro.environment.geometry import Point
from repro.experiments.common import (
    ArmResult,
    ScenarioConfig,
    TaskParams,
    run_periodic_arm,
    run_sense_aid_arm,
)
from repro.sim.engine import Simulator
from tests.conftest import make_device


class TestNetworkEdges:
    def test_downlink_no_reset_preserves_tail(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        device = make_device(sim, tail_policy=TailPolicy.NO_RESET)
        device.modem.transmit(20_000, TrafficCategory.BACKGROUND)
        sim.run(until=3.0)
        deadline = sim.now + device.modem.tail_remaining()
        network.downlink(
            device,
            Message(
                MessageKind.TASK_ASSIGNMENT,
                "srv",
                128,
                category=TrafficCategory.CROWDSENSING,
            ),
        )
        sim.run(until=deadline + 0.2)
        assert device.modem.state is RRCState.IDLE

    def test_zero_byte_message(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        device = make_device(sim)
        delivered = []
        network.uplink(
            device,
            Message(MessageKind.APP_TRAFFIC, "d", 0),
            on_delivered=lambda m, r: delivered.append(r),
        )
        sim.run(until=30.0)
        assert len(delivered) == 1  # min transfer floor applies


class TestDRXBoundaries:
    def test_phase_at_exact_boundary_belongs_to_next_phase(self):
        boundary = LTE_DRX.continuous_rx.duration_s
        assert LTE_DRX.phase_at(boundary).name == "short_drx"

    def test_paging_delay_at_zero(self):
        assert LTE_DRX.paging_delay(0.0) == 0.0


class TestProfilesEdges:
    def test_population_mix_zero(self):
        assert population_mix(0) == []

    def test_population_mix_negative_rejected(self):
        with pytest.raises(ValueError):
            population_mix(-1)

    def test_population_mix_all_without_barometer(self):
        mix = population_mix(4, barometer_fraction=0.0)
        from repro.devices.sensors import SensorType

        assert all(SensorType.BAROMETER not in p.sensors for p in mix)


class TestFederationEdges:
    def test_instance_for_point(self):
        sim = Simulator()
        federation = FederatedSenseAid(
            sim,
            CellularNetwork(sim),
            [
                EdgeRegionSpec("a", Point(0.0, 0.0)),
                EdgeRegionSpec("b", Point(1000.0, 0.0)),
            ],
        )
        assert federation.instance_for(Point(10.0, 0.0)) is federation.instance("a")

    def test_invalid_rebalance_period(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FederatedSenseAid(
                sim,
                CellularNetwork(sim),
                [EdgeRegionSpec("a", Point(0.0, 0.0))],
                rebalance_period_s=0.0,
            )

    def test_deregister_unknown_is_noop(self):
        sim = Simulator()
        federation = FederatedSenseAid(
            sim, CellularNetwork(sim), [EdgeRegionSpec("a", Point(0.0, 0.0))]
        )
        federation.deregister("ghost")


class TestExperimentHarnessEdges:
    def test_task_params_to_spec_window(self):
        from repro.environment.campus import default_campus

        params = TaskParams(start_offset_s=120.0, sampling_duration_s=600.0)
        spec = params.to_spec(default_campus(), "test")
        assert spec.start_time == 120.0
        assert spec.end_time == 720.0
        assert spec.origin == "test"

    def test_arm_requires_tasks(self):
        with pytest.raises(ValueError):
            run_periodic_arm(ScenarioConfig(seed=1), [])
        with pytest.raises(ValueError):
            run_sense_aid_arm(ScenarioConfig(seed=1), [], ServerMode.BASIC)

    def test_active_devices_excludes_idle_ones(self):
        arm = run_sense_aid_arm(
            ScenarioConfig(seed=7),
            [TaskParams(area_radius_m=300.0, sampling_duration_s=600.0)],
            ServerMode.COMPLETE,
        )
        active = arm.active_devices()
        assert 0 < len(active) <= 20
        for device_id, joules in arm.energy.per_device_j.items():
            if device_id in active:
                assert joules > 0
            else:
                assert joules == pytest.approx(0.0, abs=1e-9)

    def test_with_seed_returns_new_config(self):
        config = ScenarioConfig(seed=1)
        other = config.with_seed(2)
        assert other.seed == 2
        assert config.seed == 1

    def test_empty_arm_result_helpers(self):
        from repro.analysis.energy import EnergySummary

        arm = ArmResult(
            name="empty",
            energy=EnergySummary(total_j=0.0, per_device_j={}, device_count=0),
            data_points=0,
            participants_per_request={},
            devices=[],
        )
        assert arm.mean_participants() == 0.0
        assert arm.mean_qualified() == 0.0
        assert arm.mean_energy_per_active_device_j() == 0.0


class TestCollector:
    def test_collector_counts(self):
        collector = BaselineCollector()
        assert len(collector) == 0
        collector.on_delivered(Message(MessageKind.SENSOR_DATA, "d", 600), None)
        assert len(collector) == 1
