"""Unit tests for geometry, campus, mobility, and population."""

from __future__ import annotations

import random

import pytest

from repro.devices.sensors import SensorType
from repro.environment.campus import (
    CS_DEPARTMENT,
    STUDY_SITES,
    Campus,
    default_campus,
)
from repro.environment.geometry import Point, distance_m, interpolate
from repro.environment.mobility import RandomWaypointMobility, StaticMobility
from repro.environment.population import PopulationConfig, build_population
from repro.sim.engine import Simulator


class TestGeometry:
    def test_distance(self):
        assert distance_m(Point(0, 0), Point(3, 4)) == 5.0

    def test_within(self):
        assert Point(3, 4).within(Point(0, 0), 5.0)
        assert not Point(3, 4).within(Point(0, 0), 4.9)

    def test_within_negative_radius(self):
        with pytest.raises(ValueError):
            Point(0, 0).within(Point(0, 0), -1.0)

    def test_towards_partial(self):
        result = Point(0, 0).towards(Point(10, 0), 4.0)
        assert result == Point(4.0, 0.0)

    def test_towards_clamps_at_target(self):
        assert Point(0, 0).towards(Point(10, 0), 50.0) == Point(10, 0)

    def test_towards_same_point(self):
        assert Point(1, 1).towards(Point(1, 1), 5.0) == Point(1, 1)

    def test_interpolate(self):
        assert interpolate(Point(0, 0), Point(10, 20), 0.5) == Point(5.0, 10.0)

    def test_interpolate_bounds(self):
        with pytest.raises(ValueError):
            interpolate(Point(0, 0), Point(1, 1), 1.5)


class TestCampus:
    def test_default_campus_has_study_sites(self):
        campus = default_campus()
        for name in STUDY_SITES:
            assert campus.site(name).name == name

    def test_sites_are_spread_realistically(self):
        """Study sites sit a few hundred metres apart (not kilometres)."""
        campus = default_campus()
        positions = [campus.site(name).position for name in STUDY_SITES]
        for i, a in enumerate(positions):
            for b in positions[i + 1 :]:
                assert 100.0 < a.distance_to(b) < 1500.0

    def test_waypoints_include_sites(self):
        campus = default_campus()
        waypoints = campus.all_waypoints()
        assert campus.site(CS_DEPARTMENT).position in waypoints
        assert len(waypoints) > len(STUDY_SITES)

    def test_duplicate_site_rejected(self):
        campus = Campus(100.0, 100.0)
        campus.add_site("x", Point(1, 1))
        with pytest.raises(ValueError):
            campus.add_site("x", Point(2, 2))

    def test_out_of_bounds_rejected(self):
        campus = Campus(100.0, 100.0)
        with pytest.raises(ValueError):
            campus.add_site("x", Point(200, 0))
        with pytest.raises(ValueError):
            campus.add_waypoint(Point(-1, 0))

    def test_unknown_site(self):
        with pytest.raises(KeyError):
            default_campus().site("Chemistry")

    def test_contains(self):
        campus = Campus(100.0, 100.0)
        assert campus.contains(Point(50, 50))
        assert not campus.contains(Point(101, 50))


class TestStaticMobility:
    def test_never_moves(self):
        mobility = StaticMobility(Point(5, 5))
        assert mobility.position_at(0.0) == Point(5, 5)
        assert mobility.position_at(1e6) == Point(5, 5)


class TestRandomWaypointMobility:
    def _make(self, seed=1, **kwargs):
        campus = default_campus()
        return RandomWaypointMobility(
            campus.site(CS_DEPARTMENT).position,
            campus.all_waypoints(),
            random.Random(seed),
            **kwargs,
        )

    def test_starts_at_home(self):
        mobility = self._make()
        home = default_campus().site(CS_DEPARTMENT).position
        assert mobility.position_at(0.0) == home

    def test_positions_stay_reasonable(self):
        mobility = self._make()
        campus = default_campus()
        for t in range(0, 4 * 3600, 300):
            p = mobility.position_at(float(t))
            assert campus.contains(p)

    def test_movement_happens(self):
        mobility = self._make(mean_pause_s=60.0)
        home = default_campus().site(CS_DEPARTMENT).position
        positions = {
            (
                round(mobility.position_at(float(t)).x),
                round(mobility.position_at(float(t)).y),
            )
            for t in range(0, 2 * 3600, 60)
        }
        assert len(positions) > 3  # actually wandered

    def test_speed_is_walking_pace(self):
        mobility = self._make()
        assert 0.9 <= mobility.speed_mps <= 1.7

    def test_continuity(self):
        """Positions one second apart can differ by at most the speed."""
        mobility = self._make(mean_pause_s=30.0)
        prev = mobility.position_at(0.0)
        for t in range(1, 600):
            cur = mobility.position_at(float(t))
            assert prev.distance_to(cur) <= mobility.speed_mps + 1e-6
            prev = cur

    def test_deterministic_for_seed(self):
        a = self._make(seed=9).position_at(1234.0)
        b = self._make(seed=9).position_at(1234.0)
        assert a == b

    def test_non_monotone_queries_allowed(self):
        mobility = self._make()
        late = mobility.position_at(3600.0)
        early = mobility.position_at(60.0)
        again = mobility.position_at(3600.0)
        assert late == again

    def test_empty_waypoints_rejected(self):
        with pytest.raises(ValueError):
            RandomWaypointMobility(Point(0, 0), [], random.Random(1))

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            self._make().position_at(-1.0)

    def test_invalid_home_bias(self):
        with pytest.raises(ValueError):
            self._make(home_bias=2.0)


class TestPopulation:
    def test_population_size(self):
        sim = Simulator(seed=3)
        devices = build_population(sim, default_campus(), PopulationConfig(size=20))
        assert len(devices) == 20
        assert len({d.device_id for d in devices}) == 20

    def test_battery_levels_in_range(self):
        sim = Simulator(seed=3)
        config = PopulationConfig(size=30, min_battery_pct=60.0, max_battery_pct=90.0)
        devices = build_population(sim, default_campus(), config, start_traffic=False)
        for device in devices:
            assert 60.0 <= device.battery.level_pct <= 90.0

    def test_identical_across_simulators_with_same_seed(self):
        campus = default_campus()
        a = build_population(Simulator(seed=11), campus, PopulationConfig(size=5))
        b = build_population(Simulator(seed=11), campus, PopulationConfig(size=5))
        for da, db in zip(a, b):
            assert da.profile.model == db.profile.model
            assert da.battery.level_pct == db.battery.level_pct
            assert da.mobility.position_at(1000.0) == db.mobility.position_at(1000.0)

    def test_every_device_has_barometer_by_default(self):
        sim = Simulator(seed=3)
        devices = build_population(sim, default_campus(), PopulationConfig(size=12))
        assert all(d.sensors.has(SensorType.BAROMETER) for d in devices)

    def test_barometer_fraction_mixes_in_unequipped(self):
        sim = Simulator(seed=3)
        config = PopulationConfig(size=10, barometer_fraction=0.5)
        devices = build_population(sim, default_campus(), config, start_traffic=False)
        without = [d for d in devices if not d.sensors.has(SensorType.BAROMETER)]
        assert len(without) >= 3

    def test_site_homes_cluster_users(self):
        sim = Simulator(seed=3)
        campus = default_campus()
        config = PopulationConfig(size=20, site_home_fraction=1.0)
        devices = build_population(sim, campus, config, start_traffic=False)
        site_positions = {(s.position.x, s.position.y) for s in campus.sites.values()}
        at_sites = sum(
            1
            for d in devices
            if (d.position().x, d.position().y) in site_positions
        )
        assert at_sites == 20  # everyone starts at a study site

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PopulationConfig(size=0)
        with pytest.raises(ValueError):
            PopulationConfig(min_battery_pct=90.0, max_battery_pct=50.0)
        with pytest.raises(ValueError):
            PopulationConfig(site_home_fraction=1.5)
