"""Integration tests: the reproduced experiments exhibit the paper's shapes.

These tests run the actual experiment harness (smaller sweeps where the
full sweep would be slow) and assert the qualitative results the paper
reports — who wins, in which direction trends move, and fairness.
"""

from __future__ import annotations

import pytest

from repro.core.config import ServerMode
from repro.devices.battery import TWO_PERCENT_BUDGET_J
from repro.experiments import exp1_radius, exp2_period, exp3_tasks, pcs_accuracy
from repro.experiments import power_case_study, survey, tailtime
from repro.experiments.common import (
    ScenarioConfig,
    TaskParams,
    run_pcs_arm,
    run_periodic_arm,
    run_sense_aid_arm,
)

CONFIG = ScenarioConfig(seed=7)


@pytest.fixture(scope="module")
def exp1_result():
    return exp1_radius.run(CONFIG, radii_m=(100.0, 500.0, 1000.0))


@pytest.fixture(scope="module")
def exp2_result():
    return exp2_period.run(CONFIG, periods_s=(60.0, 600.0))


@pytest.fixture(scope="module")
def exp3_result():
    return exp3_tasks.run(CONFIG, task_counts=(3, 10))


class TestSurvey:
    def test_distribution_sums_to_one(self):
        assert sum(survey.SURVEY_DISTRIBUTION.values()) == pytest.approx(1.0)

    def test_published_anchors(self):
        assert survey.SURVEY_DISTRIBUTION["up to 2%"] == pytest.approx(0.414)
        assert survey.SURVEY_DISTRIBUTION["over 10%"] == 0.0

    def test_respondent_counts_total(self):
        buckets = survey.run()
        assert sum(b.respondents for b in buckets) == survey.RESPONDENTS

    def test_majority_tolerates_at_most_2pct(self):
        assert survey.majority_tolerance_pct() > 50.0


class TestPowerCaseStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return power_case_study.run()

    def test_every_configuration_exceeds_budget(self, rows):
        """Paper: 'In all cases the energy consumption is more than
        what the majority of the users would expect (2%).'"""
        assert all(r.over_2pct_budget for r in rows)

    def test_lte_costs_more_than_3g(self, rows):
        by_key = {(r.app, r.update_period_label, r.radio): r.energy_j for r in rows}
        for app in ("Pressurenet", "WeatherSignal"):
            for period in ("5 min", "10 min"):
                assert by_key[(app, period, "LTE")] > by_key[(app, period, "3G")]

    def test_weathersignal_hungrier_than_pressurenet(self, rows):
        by_key = {(r.app, r.update_period_label, r.radio): r.energy_j for r in rows}
        for period in ("5 min", "10 min"):
            for radio in ("3G", "LTE"):
                assert (
                    by_key[("WeatherSignal", period, radio)]
                    > by_key[("Pressurenet", period, radio)]
                )

    def test_equal_update_counts(self, rows):
        assert len({r.updates for r in rows}) == 1


class TestTailTime:
    def test_no_reset_idles_on_schedule(self):
        result = tailtime.run(reset_tail=False)
        # Paper: burst at 591 s, idle around 602.5 s (~11.5 s connected).
        assert result.connected_stretch_s == pytest.approx(11.9, abs=0.5)

    def test_reset_extends_connection(self):
        no_reset = tailtime.run(reset_tail=False)
        reset = tailtime.run(reset_tail=True)
        assert reset.idle_at > no_reset.idle_at
        assert reset.crowdsensing_energy_j > 10 * no_reset.crowdsensing_energy_j

    def test_strip_shows_tail(self):
        result = tailtime.run(reset_tail=False)
        assert "t" in result.ascii_strip
        assert "A" in result.ascii_strip


class TestExperiment1(object):
    def test_fig7_qualified_grows_with_radius(self, exp1_result):
        counts = [p.qualified_mean for p in exp1_result.points]
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]

    def test_fig7_about_eleven_qualified_at_1km(self, exp1_result):
        """Paper Fig. 9 narrative: ~11 qualified users at 1000 m."""
        assert 8.0 <= exp1_result.points[-1].qualified_mean <= 16.0

    def test_fig8_sense_aid_beats_pcs_everywhere(self, exp1_result):
        for point in exp1_result.points:
            assert point.complete.energy.total_j <= point.basic.energy.total_j
            assert point.basic.energy.total_j < point.pcs.energy.total_j
            assert point.pcs.energy.total_j < point.periodic.energy.total_j

    def test_fig8_gap_widens_with_radius(self, exp1_result):
        """Paper: 'The benefit of Sense-Aid increases as the area radius
        increases.'"""
        savings = [p.savings_row()["complete_vs_pcs"] for p in exp1_result.points]
        assert savings[-1] > savings[0]

    def test_fig9_selection_is_fair(self, exp1_result):
        counts = exp1_result.fairness_counts
        total = sum(counts.values())
        assert total == 2 * len(exp1_result.fairness_log)
        # Paper: each device selected once or twice over the 9 rounds.
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_fig9_nine_selection_rounds(self, exp1_result):
        assert len(exp1_result.fairness_log) == 9

    def test_savings_within_plausible_band(self, exp1_result):
        """Not paper-exact, but the same order: >50% at large radii."""
        last = exp1_result.points[-1].savings_row()
        assert last["complete_vs_periodic"] > 85.0
        assert last["complete_vs_pcs"] > 80.0


class TestExperiment2:
    def test_fig10_sense_aid_selects_exactly_density(self, exp2_result):
        for point in exp2_result.points:
            assert point.basic.mean_participants() == pytest.approx(
                exp2_period.SPATIAL_DENSITY
            )

    def test_fig10_baselines_use_all_qualified(self, exp2_result):
        for point in exp2_result.points:
            assert point.periodic.mean_participants() > exp2_period.SPATIAL_DENSITY

    def test_fig11_energy_falls_with_period(self, exp2_result):
        for name in ("periodic", "pcs", "basic", "complete"):
            energies = [p.energy_per_device()[name] for p in exp2_result.points]
            assert energies[0] > energies[-1]

    def test_fig11_sense_aid_cheapest_at_every_period(self, exp2_result):
        for point in exp2_result.points:
            energy = point.energy_per_device()
            assert energy["complete"] <= energy["basic"]
            assert energy["basic"] < energy["pcs"]
            assert energy["pcs"] <= energy["periodic"] * 1.05

    def test_fig11_one_minute_period_breaks_budget_for_baselines(self, exp2_result):
        """Paper: at the 1-minute period the network activity is too
        frequent — baseline users blow past the 2% budget (the mean
        dilutes across briefly-qualified users; the loaded devices are
        the ones the paper's participants correspond to)."""
        one_minute = exp2_result.points[0]
        assert one_minute.periodic.energy.max_per_device_j > TWO_PERCENT_BUDGET_J
        assert one_minute.pcs.energy.max_per_device_j > TWO_PERCENT_BUDGET_J
        assert one_minute.periodic.energy.devices_over_2pct() >= 3
        # Sense-Aid keeps even its most-used device under budget.
        assert one_minute.complete.energy.max_per_device_j < TWO_PERCENT_BUDGET_J


class TestExperiment3:
    def test_fig13_energy_rises_with_task_count(self, exp3_result):
        for name in ("periodic", "pcs", "basic", "complete"):
            energies = [p.energy_per_device()[name] for p in exp3_result.points]
            assert energies[-1] > energies[0]

    def test_fig13_sense_aid_cheapest(self, exp3_result):
        for point in exp3_result.points:
            energy = point.energy_per_device()
            assert energy["complete"] <= energy["basic"] < energy["pcs"]

    def test_savings_grow_with_concurrency(self, exp3_result):
        """Paper: 'the maximum benefit occurs with multiple crowdsensing
        tasks scheduled on the same device.'"""
        savings = [p.savings_row()["complete_vs_pcs"] for p in exp3_result.points]
        assert savings[-1] > savings[0]

    def test_fig12_baselines_task_all_qualified(self, exp3_result):
        for point in exp3_result.points:
            assert point.periodic.mean_participants() > exp3_tasks.SPATIAL_DENSITY


class TestFigure14:
    @pytest.fixture(scope="class")
    def fig14(self):
        return pcs_accuracy.run(CONFIG, accuracies=(0.40, 1.00))

    def test_pcs_energy_decreases_with_accuracy(self, fig14):
        energies = [p.pcs_energy_per_device_j for p in fig14.points]
        assert energies[0] > energies[-1]

    def test_realistic_pcs_much_worse_than_sense_aid(self, fig14):
        at_40 = fig14.points[0]
        assert at_40.ratio_vs_basic > 1.3
        assert at_40.ratio_vs_complete > 1.5

    def test_ideal_pcs_beats_sense_aid(self, fig14):
        """Paper: with 100% accuracy PCS can out-perform both variants."""
        ideal = fig14.points[-1]
        assert ideal.ratio_vs_basic < 1.0
        assert ideal.ratio_vs_complete < 1.0


class TestWorldIdenticalAcrossArms:
    def test_same_seed_same_population(self):
        tasks = [TaskParams(sampling_duration_s=600.0)]
        a = run_periodic_arm(CONFIG, tasks)
        b = run_pcs_arm(CONFIG, tasks)
        pos_a = {d.device_id: (d.position().x, d.position().y) for d in a.devices}
        pos_b = {d.device_id: (d.position().x, d.position().y) for d in b.devices}
        assert pos_a == pos_b

    def test_deterministic_rerun(self):
        tasks = [TaskParams(sampling_duration_s=600.0)]
        first = run_sense_aid_arm(CONFIG, tasks, ServerMode.COMPLETE)
        second = run_sense_aid_arm(CONFIG, tasks, ServerMode.COMPLETE)
        assert first.energy.total_j == pytest.approx(second.energy.total_j)
        assert first.data_points == second.data_points


class TestNoOrchestrationAblation:
    def test_select_all_still_beats_pcs(self):
        """Paper: 'Selecting all qualified devices in Sense-Aid still
        saves energy compared to PCS' — the tail-riding alone helps."""
        tasks = [
            TaskParams(
                area_radius_m=1000.0,
                spatial_density=2,
                sampling_period_s=600.0,
                sampling_duration_s=5400.0,
            )
        ]
        select_all = run_sense_aid_arm(
            CONFIG, tasks, ServerMode.COMPLETE, select_all_qualified=True
        )
        pcs = run_pcs_arm(CONFIG, tasks)
        orchestrated = run_sense_aid_arm(CONFIG, tasks, ServerMode.COMPLETE)
        assert select_all.energy.total_j < pcs.energy.total_j
        assert orchestrated.energy.total_j < select_all.energy.total_j
