"""Tests for CSV export of experiment results."""

from __future__ import annotations

import csv
import io

import pytest

from repro.analysis.export import (
    exp1_to_csv,
    exp2_to_csv,
    fig14_to_csv,
    rows_to_csv,
    selection_log_to_csv,
    write_csv,
)
from repro.experiments import exp1_radius, exp2_period, pcs_accuracy
from repro.experiments.common import ScenarioConfig

CONFIG = ScenarioConfig(seed=7)


def parse(text):
    return list(csv.reader(io.StringIO(text)))


class TestRowsToCsv:
    def test_basic(self):
        text = rows_to_csv(["a", "b"], [(1, 2), (3, 4)])
        assert parse(text) == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_quoting(self):
        text = rows_to_csv(["x"], [("value, with comma",)])
        assert parse(text)[1] == ["value, with comma"]

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            rows_to_csv(["a"], [(1, 2)])

    def test_write_csv(self, tmp_path):
        path = str(tmp_path / "out.csv")
        write_csv(path, ["a"], [(1,), (2,)])
        with open(path) as f:
            assert parse(f.read()) == [["a"], ["1"], ["2"]]


class TestExperimentExports:
    @pytest.fixture(scope="class")
    def exp1(self):
        return exp1_radius.run(CONFIG, radii_m=(100.0, 1000.0))

    def test_exp1_csv(self, exp1):
        rows = parse(exp1_to_csv(exp1))
        assert rows[0][0] == "radius_m"
        assert len(rows) == 3
        assert float(rows[1][0]) == 100.0
        # Sense-Aid Complete column below PCS column at 1000 m.
        assert float(rows[2][5]) < float(rows[2][3])

    def test_selection_log_csv(self, exp1):
        text = selection_log_to_csv(exp1.fairness_log)
        rows = parse(text)
        assert rows[0] == ["time_s", "request_id", "qualified", "selected"]
        assert len(rows) == 1 + len(exp1.fairness_log)
        assert ";" in rows[1][3] or rows[1][3]  # selected ids joined

    def test_exp2_csv(self):
        result = exp2_period.run(CONFIG, periods_s=(600.0,))
        rows = parse(exp2_to_csv(result))
        assert len(rows) == 2
        assert rows[0][0] == "period_s"

    def test_fig14_csv(self):
        result = pcs_accuracy.run(CONFIG, accuracies=(0.4, 1.0))
        rows = parse(fig14_to_csv(result))
        assert len(rows) == 3
        assert float(rows[1][1]) > float(rows[2][1])  # energy falls
