"""Failure-handling tests: server crash, fail-safe routing, recovery,
unresponsive devices, and epoch resets."""

from __future__ import annotations

import pytest

from repro.cellular.network import CellularNetwork
from repro.cellular.packets import (
    Message,
    MessageKind,
    TrafficCategory,
    sensor_data_message,
)
from repro.core.config import SenseAidConfig, ServerMode
from repro.sim.engine import Simulator
from tests.test_core_server import CENTER, make_setup, make_spec


class TestServerCrash:
    def test_crash_stops_orchestration(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        server.submit_task(
            make_spec(sampling_period_s=600.0, sampling_duration_s=3600.0),
            lambda p: None,
        )
        sim.run(until=700.0)
        issued_before = server.stats.requests_issued
        server.crash()
        sim.run(until=2500.0)
        assert server.stats.requests_issued == issued_before
        assert server.stats.requests_lost_to_crash >= 2

    def test_crash_reroutes_to_path1(self):
        """The paper's fail-safe: path 1 if Sense-Aid server crashes."""
        sim = Simulator()
        server, network, devices, _ = make_setup(sim, n_devices=1)
        assert network.route_for(sensor_data_message("d0", {})) == "path2"
        server.crash()
        assert network.route_for(sensor_data_message("d0", {})) == "path1"

    def test_background_traffic_unaffected_by_crash(self):
        sim = Simulator()
        server, network, devices, _ = make_setup(sim, n_devices=1)
        server.crash()
        msg = Message(MessageKind.APP_TRAFFIC, "d0", 1000)
        delivered = []
        network.uplink(devices[0], msg, on_delivered=lambda m, r: delivered.append(r))
        sim.run(until=30.0)
        assert len(delivered) == 1
        assert delivered[0].path == "path1"

    def test_recovery_resumes_scheduling(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        data = []
        server.submit_task(
            make_spec(
                spatial_density=2,
                sampling_period_s=600.0,
                sampling_duration_s=3600.0,
            ),
            data.append,
        )
        sim.run(until=700.0)
        assert server.stats.requests_scheduled == 2
        server.crash()
        sim.run(until=1900.0)  # the 1200 s and 1800 s instants are lost
        assert server.stats.requests_lost_to_crash == 2
        data_during_crash = [p for p in data if 700.0 < p.delivered_at <= 1900.0]
        assert data_during_crash == []
        server.recover()
        sim.run(until=3700.0)
        # The remaining instants (issued at 2400 and 3000) resume.
        assert server.stats.requests_scheduled == 4
        resumed = [p for p in data if p.delivered_at > 1900.0]
        assert len(resumed) == 2 * 2  # two requests × density 2

    def test_crash_is_idempotent(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=1)
        server.crash()
        server.crash()
        server.recover()
        server.recover()
        assert not server.crashed

    def test_uploads_during_crash_are_not_counted(self):
        sim = Simulator()
        server, network, devices, _ = make_setup(sim, n_devices=2)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=10.0)
        server.crash()
        # A straggler upload arrives at the (dead) server callback.
        from repro.cellular.network import DeliveryReceipt

        request_id = server.selection_log[0].request_id
        message = sensor_data_message(
            "d0", {"device_id": "d0", "request_id": request_id, "value": 1013.0}
        )
        server.receive_sensed_data(
            message, DeliveryReceipt(1, sim.now, sim.now, "path1")
        )
        assert server.stats.data_points == 0


class TestUnresponsiveDevices:
    def test_device_without_handler_marked_unresponsive(self):
        sim = Simulator()
        server, network, devices, clients = make_setup(sim, n_devices=3)
        # Simulate a vanished client: handler removed but record kept.
        server._assignment_handlers.pop("d0")
        server.submit_task(
            make_spec(spatial_density=3, sampling_duration_s=600.0), lambda p: None
        )
        sim.run(until=650.0)
        assert not server.devices.record("d0").responsive
        # Follow-up requests exclude it (only 2 eligible of 3 needed).
        server.submit_task(
            make_spec(spatial_density=3, sampling_duration_s=600.0), lambda p: None
        )
        sim.run(until=sim.now + 50.0)
        assert server.stats.requests_waitlisted >= 1


class TestEpochReset:
    def test_counters_reset_each_epoch(self):
        sim = Simulator()
        config = SenseAidConfig(epoch_reset_period_s=1000.0)
        server, _, _, _ = make_setup(sim, n_devices=2, config=config)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=650.0)
        assert any(r.times_selected > 0 for r in server.devices.records())
        sim.run(until=1100.0)  # epoch boundary at t=1000
        assert all(r.times_selected == 0 for r in server.devices.records())
        assert all(r.energy_used_j == 0.0 for r in server.devices.records())

    def test_invalid_epoch_period(self):
        with pytest.raises(ValueError):
            SenseAidConfig(epoch_reset_period_s=0.0)


class TestReliability:
    def test_reliability_decays_on_invalid_data(self):
        from tests.test_core_datastores_queues import make_record

        record = make_record()
        assert record.reliability == 1.0
        record.observe_data_quality(False)
        assert record.reliability == pytest.approx(0.75)
        record.observe_data_quality(False)
        assert record.reliability < 0.6

    def test_reliability_recovers_on_valid_data(self):
        from tests.test_core_datastores_queues import make_record

        record = make_record(reliability=0.5)
        for _ in range(10):
            record.observe_data_quality(True)
        assert record.reliability > 0.9

    def test_selector_reliability_cutoff(self):
        from repro.core.config import SelectorWeights
        from repro.core.selector import DeviceSelector
        from tests.test_core_datastores_queues import make_record

        selector = DeviceSelector(SelectorWeights(), min_reliability=0.5)
        good = make_record("good", reliability=0.9)
        bad = make_record("bad", reliability=0.3)
        verdict = selector.eligibility(bad)
        assert not verdict.eligible
        assert verdict.reason == "unreliable"
        assert selector.eligibility(good).eligible

    def test_rho_weight_penalises_unreliable_devices(self):
        from repro.core.config import SelectorWeights
        from repro.core.selector import DeviceSelector
        from tests.test_core_datastores_queues import make_record

        selector = DeviceSelector(SelectorWeights(rho=5.0))
        good = make_record("good", reliability=1.0)
        shaky = make_record("shaky", reliability=0.6)
        assert selector.select([shaky, good], 1, now=0.0) == ["good"]

    def test_server_updates_reliability_from_data_path(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=2)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        sim.run(until=650.0)
        selected = server.selection_log[0].selected
        for device_id in selected:
            assert server.devices.record(device_id).reliability == 1.0
