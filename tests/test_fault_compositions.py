"""Composition edges of ``FaultInjector._decide``: what happens when
several fault mechanisms claim the same message or the same instant.

The decision pipeline is ordered — dead device, tower outage, bursty
loss, delay, duplication — and these tests pin the observable
consequences of that order: loss preempts duplication on the same
message, an in-flight delayed message survives its sender's death,
and overload-burst ticks keep landing while the server they target
crashes and restarts mid-burst.
"""

from __future__ import annotations

import pytest

from repro.cellular.packets import Message, MessageKind
from repro.core.config import OverloadPolicy, SenseAidConfig, ServerMode
from repro.faults import FaultPlan, GilbertElliott
from repro.sim.engine import Simulator
from tests.test_faults import chaos_setup


class TestLossVersusDuplication:
    def test_loss_preempts_duplication_on_same_message(self):
        """With certain loss and certain duplication configured, the
        loss wins: a dropped message produces zero deliveries, not a
        surviving duplicate."""
        sim = Simulator(seed=3)
        model = GilbertElliott(
            p_good_to_bad=1.0, p_bad_to_good=0.0, loss_bad=1.0, bad=True
        )
        _, network, _, injector, devices, _ = chaos_setup(
            sim,
            n_devices=1,
            loss_model=model,
            duplicate_probability=1.0,
            duplicate_lag_s=(1.0, 1.0),
        )
        arrivals = []
        network.uplink(
            devices[0],
            Message(MessageKind.APP_TRAFFIC, "d0", 600),
            on_delivered=lambda m, r: arrivals.append(r.delivered_at),
        )
        sim.run(until=60.0)
        assert arrivals == []
        assert injector.stats.losses_injected == 1
        assert injector.stats.duplicates_injected == 0
        assert network.messages_duplicated == 0

    def test_delay_and_duplication_compose_when_nothing_drops(self):
        """Without loss in the way, one message with both knobs at 1.0
        yields the delayed original plus its lagged copy."""
        sim = Simulator(seed=3)
        _, network, _, injector, devices, _ = chaos_setup(
            sim,
            n_devices=1,
            delay_probability=1.0,
            delay_range_s=(10.0, 10.0),
            duplicate_probability=1.0,
            duplicate_lag_s=(5.0, 5.0),
        )
        arrivals = []
        network.uplink(
            devices[0],
            Message(MessageKind.APP_TRAFFIC, "d0", 600),
            on_delivered=lambda m, r: arrivals.append(r.delivered_at),
        )
        sim.run(until=60.0)
        assert len(arrivals) == 2
        assert injector.stats.delays_injected == 1
        assert injector.stats.duplicates_injected == 1


class TestDeathMidFlight:
    def test_delayed_message_survives_sender_death(self):
        """The fault decision is taken at transmission time: a message
        already in (delayed) flight still delivers even though its
        device is killed before the delivery instant — and the dead
        device's *next* message is dropped at the hook."""
        sim = Simulator(seed=5)
        plan = FaultPlan().kill_device(10.0, "d0")
        _, network, _, injector, devices, _ = chaos_setup(
            sim,
            n_devices=1,
            plan=plan,
            delay_probability=1.0,
            delay_range_s=(30.0, 30.0),
        )
        arrivals = []

        def send():
            network.uplink(
                devices[0],
                Message(MessageKind.APP_TRAFFIC, "d0", 600),
                on_delivered=lambda m, r: arrivals.append(r.delivered_at),
            )

        send()  # in flight (delayed past the kill) at t=0
        sim.schedule_at(20.0, send)  # sent after death: dropped
        sim.run(until=120.0)
        assert len(arrivals) == 1
        assert arrivals[0] > 10.0  # delivered after the device died
        assert injector.stats.dead_device_drops == 1
        assert injector.is_dead("d0")


class TestBurstRacingCrash:
    def test_burst_ticks_survive_mid_burst_server_crash(self):
        """An overload burst straddling a server crash+restart keeps
        ticking: every scheduled request lands in the admission
        controller without raising, through crash and recovery."""
        sim = Simulator(seed=9)
        plan = (
            FaultPlan()
            .overload_burst(10.0, rate_per_s=50.0, duration_s=4.0)
            .server_crash(12.0, restart_after=2.0)
        )
        server, _, _, injector, _, _ = chaos_setup(
            sim,
            n_devices=1,
            plan=plan,
            config=SenseAidConfig(
                mode=ServerMode.COMPLETE, overload=OverloadPolicy()
            ),
        )
        sim.run(until=60.0)
        assert injector.stats.overload_bursts == 1
        assert injector.stats.burst_requests == 200  # 50/s x 4s, none lost
        assert injector.stats.server_crashes == 1
        assert injector.stats.server_restarts == 1
        assert not server.crashed
        admission = server.admission
        assert admission is not None
        assert (
            admission.stats.total_admitted + admission.stats.total_shed
            >= injector.stats.burst_requests
        )

    def test_two_bursts_race_without_interference(self):
        """Two overlapping bursts of different classes simply sum."""
        sim = Simulator(seed=9)
        plan = (
            FaultPlan()
            .overload_burst(10.0, rate_per_s=40.0, duration_s=5.0)
            .overload_burst(
                12.0, rate_per_s=20.0, duration_s=5.0, request_class="upload"
            )
        )
        _, _, _, injector, _, _ = chaos_setup(
            sim,
            n_devices=1,
            plan=plan,
            config=SenseAidConfig(
                mode=ServerMode.COMPLETE, overload=OverloadPolicy()
            ),
        )
        sim.run(until=60.0)
        assert injector.stats.overload_bursts == 2
        assert injector.stats.burst_requests == 300
