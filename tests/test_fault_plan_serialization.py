"""Tests for FaultPlan serialization, eager kwarg validation, and
temporal sanity (the soak harness's reproducer substrate)."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.faults import (
    ACTION_SCHEMAS,
    PLAN_SCHEMA,
    FaultPlan,
    FaultPlanError,
    GilbertElliott,
)
from repro.faults.plan import FaultEvent


def full_vocabulary_plan() -> FaultPlan:
    """One of every serializable action, temporally sane."""
    return (
        FaultPlan()
        .tower_down(10.0, "t0", restore_after=40.0)
        .partition(60.0, heal_after=30.0)
        .kill_device(70.0, "d1")
        .deregister_device(75.0, "d2")
        .set_loss_model(
            80.0,
            GilbertElliott(
                p_good_to_bad=0.1,
                p_bad_to_good=0.3,
                loss_good=0.0,
                loss_bad=0.7,
            ),
        )
        .clear_loss_model(120.0)
        .set_delay(130.0, probability=0.25, delay_range_s=(0.5, 3.0))
        .set_duplication(140.0, probability=0.15)
        .server_crash(150.0, restart_after=20.0)
        .overload_burst(180.0, rate_per_s=100.0, duration_s=5.0)
        .shard_crash(200.0, "s1")
        .shard_partition(210.0, "s2", heal_after=50.0)
    )


class TestEagerValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault action"):
            FaultPlan().add(10.0, "meteor_strike")

    def test_unknown_action_is_valueerror_compatible(self):
        with pytest.raises(ValueError):
            FaultPlan().add(10.0, "meteor_strike")

    def test_unknown_kwarg_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown kwargs"):
            FaultPlan().add(10.0, "tower_down", tower="t0")

    def test_missing_required_kwarg_rejected(self):
        with pytest.raises(FaultPlanError, match="missing required"):
            FaultPlan().add(10.0, "tower_down")

    def test_wrong_type_rejected(self):
        with pytest.raises(FaultPlanError, match="must be a string"):
            FaultPlan().add(10.0, "tower_down", tower_id=7)

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(FaultPlanError, match=r"\[0, 1\]"):
            FaultPlan().add(10.0, "set_duplication", probability=1.5)

    def test_bad_range_rejected(self):
        with pytest.raises(FaultPlanError, match="lo <= hi"):
            FaultPlan().add(
                10.0, "set_delay", probability=0.5, delay_range_s=(5.0, 1.0)
            )

    def test_loss_model_type_enforced(self):
        with pytest.raises(FaultPlanError, match="GilbertElliott"):
            FaultPlan().add(10.0, "set_loss_model", model={"loss_bad": 0.9})

    def test_optional_kwarg_may_be_omitted(self):
        plan = FaultPlan().add(
            10.0, "overload_burst", rate_per_s=50.0, duration_s=2.0
        )
        assert len(plan) == 1

    def test_every_injector_action_has_a_schema(self):
        from repro.faults.injector import FaultInjector

        for action in ACTION_SCHEMAS:
            assert hasattr(FaultInjector, f"_do_{action}")


class TestTemporalSanity:
    def test_heal_before_partition_raises_strict(self):
        plan = FaultPlan().heal(10.0).partition(50.0)
        with pytest.raises(FaultPlanError, match="would no-op"):
            plan.validate()

    def test_tower_up_before_down_raises_strict(self):
        plan = FaultPlan().tower_up(10.0, "t0").tower_down(50.0, "t0")
        with pytest.raises(FaultPlanError, match="tower_up"):
            plan.validate()

    def test_shard_heal_before_partition_raises_strict(self):
        plan = (
            FaultPlan()
            .shard_heal(10.0, "s1")
            .shard_partition(50.0, "s1")
        )
        with pytest.raises(FaultPlanError, match="shard_heal"):
            plan.validate()

    def test_heal_for_other_resource_does_not_count(self):
        plan = (
            FaultPlan()
            .shard_partition(10.0, "s1")
            .shard_heal(20.0, "s2")  # wrong shard: s2 was never cut
        )
        with pytest.raises(FaultPlanError, match="s2"):
            plan.validate()

    def test_paired_outages_validate_clean(self):
        assert full_vocabulary_plan().validate() == []

    def test_strict_false_warns_instead(self):
        plan = FaultPlan(strict=False).heal(10.0)
        with pytest.warns(UserWarning, match="would no-op"):
            problems = plan.validate()
        assert len(problems) == 1

    def test_injector_attach_enforces_validation(self):
        from repro.cellular.network import CellularNetwork
        from repro.faults import FaultInjector
        from repro.sim.engine import Simulator

        sim = Simulator(seed=1)
        network = CellularNetwork(sim)
        bad = FaultPlan().heal(10.0).partition(50.0)
        with pytest.raises(FaultPlanError):
            FaultInjector(sim, network, plan=bad)


class TestJsonRoundTrip:
    def test_round_trip_preserves_events(self):
        plan = full_vocabulary_plan()
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt.to_json() == plan.to_json()
        assert len(rebuilt) == len(plan)
        assert [e.action for e in rebuilt.events] == [
            e.action for e in plan.events
        ]

    def test_round_trip_restores_types(self):
        plan = full_vocabulary_plan()
        rebuilt = FaultPlan.from_json(plan.to_json())
        by_action = {e.action: e for e in rebuilt.events}
        model = by_action["set_loss_model"].kwargs["model"]
        assert isinstance(model, GilbertElliott)
        assert model.loss_bad == 0.7
        delay_range = by_action["set_delay"].kwargs["delay_range_s"]
        assert delay_range == (0.5, 3.0)
        assert isinstance(delay_range, tuple)

    def test_schema_tag_present(self):
        doc = json.loads(full_vocabulary_plan().to_json())
        assert doc["schema"] == PLAN_SCHEMA

    def test_strict_flag_round_trips(self):
        lax = FaultPlan(strict=False).partition(10.0, heal_after=5.0)
        assert FaultPlan.from_json(lax.to_json()).strict is False

    def test_wrong_schema_rejected(self):
        with pytest.raises(FaultPlanError, match="schema"):
            FaultPlan.from_json('{"schema": "fault-plan/v9", "events": []}')

    def test_garbage_json_rejected(self):
        with pytest.raises(FaultPlanError, match="unparseable"):
            FaultPlan.from_json("{nope")

    def test_events_must_be_list(self):
        with pytest.raises(FaultPlanError, match="list"):
            FaultPlan.from_json_obj({"schema": PLAN_SCHEMA, "events": {}})

    def test_event_unknown_field_rejected(self):
        doc = {
            "schema": PLAN_SCHEMA,
            "events": [
                {"at": 1.0, "action": "partition", "kwargs": {}, "note": "x"}
            ],
        }
        with pytest.raises(FaultPlanError, match="unknown fields"):
            FaultPlan.from_json_obj(doc)

    def test_event_bad_kwargs_rejected_through_add(self):
        doc = {
            "schema": PLAN_SCHEMA,
            "events": [{"at": 1.0, "action": "tower_down", "kwargs": {}}],
        }
        with pytest.raises(FaultPlanError, match="missing required"):
            FaultPlan.from_json_obj(doc)

    def test_conditions_refuse_serialization(self):
        plan = FaultPlan().partition(10.0, condition=lambda: True)
        with pytest.raises(FaultPlanError, match="condition"):
            plan.to_json()

    def test_from_events_preserves_conditions(self):
        cond = lambda: False  # noqa: E731
        original = FaultPlan().partition(10.0, condition=cond).heal(20.0)
        subset = FaultPlan.from_events(original.events)
        assert subset.events[0].condition is cond

    def test_from_events_strict_false_allows_orphan_heal(self):
        original = full_vocabulary_plan()
        orphan = [e for e in original.events if e.action == "heal"]
        plan = FaultPlan.from_events(orphan, strict=False)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert len(plan.validate()) == 1

    def test_events_are_normalized_like_add(self):
        doc = {
            "schema": PLAN_SCHEMA,
            "events": [
                {
                    "at": 5,
                    "action": "set_delay",
                    "kwargs": {
                        "probability": 0.5,
                        "delay_range_s": [1, 2],
                    },
                }
            ],
        }
        plan = FaultPlan.from_json_obj(doc)
        event = plan.events[0]
        assert isinstance(event, FaultEvent)
        assert event.kwargs["delay_range_s"] == (1.0, 2.0)
