"""Tests for the chaos layer: `repro.faults` (deterministic fault
injection) and its interaction with towers, the network, and clients."""

from __future__ import annotations

import pytest

from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.cellular.packets import Message, MessageKind
from repro.clientlib.client import SenseAidClient
from repro.core.config import (
    DegradedModePolicy,
    RetryPolicy,
    SenseAidConfig,
    ServerMode,
)
from repro.core.server import SenseAidServer
from repro.environment.geometry import Point
from repro.faults import FaultInjector, FaultPlan, GilbertElliott
from repro.sim.engine import Simulator
from repro.sim.simlog import structured_log
from tests.conftest import make_device
from tests.test_core_server import CENTER, make_spec


def chaos_setup(
    sim,
    n_devices=4,
    *,
    towers=None,
    retry=None,
    degraded=None,
    config=None,
    **injector_kwargs,
):
    registry = TowerRegistry(
        towers or [ENodeB("t0", CENTER, coverage_radius_m=5000.0)]
    )
    network = CellularNetwork(sim)
    server = SenseAidServer(
        sim,
        registry,
        network,
        config or SenseAidConfig(mode=ServerMode.COMPLETE),
    )
    injector = FaultInjector(
        sim, network, registry, server=server, **injector_kwargs
    )
    devices, clients = [], []
    for i in range(n_devices):
        device = make_device(sim, f"d{i}", position=CENTER)
        client = SenseAidClient(
            sim,
            device,
            server,
            network,
            retry_policy=retry,
            degraded_policy=degraded,
        )
        client.register()
        injector.adopt_client(client)
        devices.append(device)
        clients.append(client)
    return server, network, registry, injector, devices, clients


class TestGilbertElliott:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_good_to_bad=1.5)
        with pytest.raises(ValueError):
            GilbertElliott(loss_bad=-0.1)

    def test_burstiness(self):
        """Losses cluster: runs of consecutive losses are much longer
        than an i.i.d. model at the same average rate would produce."""
        import random

        model = GilbertElliott(
            p_good_to_bad=0.05, p_bad_to_good=0.2, loss_good=0.0, loss_bad=1.0
        )
        rng = random.Random(42)
        outcomes = [model.step(rng) for _ in range(5000)]
        loss_rate = sum(outcomes) / len(outcomes)
        assert 0.05 < loss_rate < 0.4
        # Longest loss run under bursty loss far exceeds i.i.d.'s
        # typical maximum at this rate (~4-5 for p=0.2, n=5000).
        longest = run = 0
        for lost in outcomes:
            run = run + 1 if lost else 0
            longest = max(longest, run)
        assert longest >= 8

    def test_steady_state_loss_matches_empirical(self):
        import random

        model = GilbertElliott(
            p_good_to_bad=0.1, p_bad_to_good=0.3, loss_good=0.0, loss_bad=0.8
        )
        expected = model.steady_state_loss()
        rng = random.Random(7)
        outcomes = [model.step(rng) for _ in range(20000)]
        assert abs(sum(outcomes) / len(outcomes) - expected) < 0.03

    def test_deterministic_given_rng(self):
        import random

        def sequence(seed):
            model = GilbertElliott()
            rng = random.Random(seed)
            return [model.step(rng) for _ in range(200)]

        assert sequence(3) == sequence(3)


class TestFaultPlan:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().add(10.0, "meteor_strike")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().tower_up(-1.0, "t0")

    def test_events_sorted_by_time(self):
        plan = FaultPlan().heal(50.0).partition(10.0).tower_up(30.0, "t0")
        assert [e.at for e in plan.events] == [10.0, 30.0, 50.0]

    def test_builders_chain_and_pair(self):
        plan = (
            FaultPlan()
            .tower_down(100.0, "t0", restore_after=50.0)
            .partition(200.0, heal_after=25.0)
        )
        actions = [(e.at, e.action) for e in plan.events]
        assert actions == [
            (100.0, "tower_down"),
            (150.0, "tower_up"),
            (200.0, "partition"),
            (225.0, "heal"),
        ]


class TestBurstyLoss:
    def test_injected_losses_drop_messages(self):
        sim = Simulator(seed=11)
        model = GilbertElliott(
            p_good_to_bad=0.3, p_bad_to_good=0.2, loss_bad=1.0
        )
        _, network, _, injector, devices, _ = chaos_setup(
            sim, n_devices=1, loss_model=model
        )
        delivered = []
        for i in range(30):
            sim.schedule_at(
                i * 60.0,
                lambda: network.uplink(
                    devices[0],
                    Message(MessageKind.APP_TRAFFIC, "d0", 600),
                    on_delivered=lambda m, r: delivered.append(m),
                ),
            )
        sim.run(until=31 * 60.0)
        assert injector.stats.losses_injected > 0
        assert len(delivered) + injector.stats.losses_injected == 30
        assert network.messages_dropped_by_faults == injector.stats.losses_injected

    def test_drops_logged_as_structured_events(self):
        sim = Simulator(seed=11)
        model = GilbertElliott(p_good_to_bad=1.0, loss_bad=1.0)
        _, network, _, injector, devices, _ = chaos_setup(
            sim, n_devices=1, loss_model=model
        )
        network.uplink(devices[0], Message(MessageKind.APP_TRAFFIC, "d0", 600))
        sim.run(until=60.0)
        drops = structured_log(sim).records(kind="fault.drop")
        assert len(drops) == 1
        assert drops[0].fields["reason"] == "burst_loss"


class TestDelayAndDuplication:
    def test_injected_delay_slows_delivery(self):
        def delivery_time(delay_probability):
            sim = Simulator(seed=4)
            _, network, _, _, devices, _ = chaos_setup(
                sim,
                n_devices=1,
                delay_probability=delay_probability,
                delay_range_s=(30.0, 30.0),
            )
            arrivals = []
            network.uplink(
                devices[0],
                Message(MessageKind.APP_TRAFFIC, "d0", 600),
                on_delivered=lambda m, r: arrivals.append(r.delivered_at),
            )
            sim.run(until=100.0)
            return arrivals[0]

        assert delivery_time(1.0) == pytest.approx(delivery_time(0.0) + 30.0)

    def test_duplication_delivers_twice(self):
        sim = Simulator(seed=4)
        _, network, _, injector, devices, _ = chaos_setup(
            sim, n_devices=1, duplicate_probability=1.0, duplicate_lag_s=(5.0, 5.0)
        )
        arrivals = []
        network.uplink(
            devices[0],
            Message(MessageKind.APP_TRAFFIC, "d0", 600),
            on_delivered=lambda m, r: arrivals.append(r.delivered_at),
        )
        sim.run(until=60.0)
        assert len(arrivals) == 2
        assert arrivals[1] == pytest.approx(arrivals[0] + 5.0)
        assert injector.stats.duplicates_injected == 1
        assert network.messages_duplicated == 1

    def test_unequal_delays_reorder_messages(self):
        sim = Simulator(seed=4)
        _, network, _, injector, devices, _ = chaos_setup(sim, n_devices=1)
        plan_order = []
        # First message gets a large injected delay, second none: the
        # second overtakes the first.
        injector._do_set_delay(1.0, (60.0, 60.0))
        network.uplink(
            devices[0],
            Message(MessageKind.APP_TRAFFIC, "d0", 600),
            on_delivered=lambda m, r: plan_order.append("first"),
        )
        sim.run(until=5.0)
        injector._do_set_delay(0.0, (0.0, 0.0))
        network.uplink(
            devices[0],
            Message(MessageKind.APP_TRAFFIC, "d0", 600),
            on_delivered=lambda m, r: plan_order.append("second"),
        )
        sim.run(until=120.0)
        assert plan_order == ["second", "first"]


class TestTowerOutage:
    def two_tower_setup(self, sim, **kwargs):
        towers = [
            ENodeB("west", Point(0.0, 500.0), coverage_radius_m=5000.0),
            ENodeB("east", Point(5000.0, 500.0), coverage_radius_m=5000.0),
        ]
        return chaos_setup(sim, towers=towers, **kwargs)

    def test_failed_tower_drops_traffic_until_restore(self):
        sim = Simulator(seed=2)
        towers = [ENodeB("only", CENTER, coverage_radius_m=5000.0)]
        plan = FaultPlan().tower_down(100.0, "only", restore_after=200.0)
        _, network, registry, injector, devices, _ = chaos_setup(
            sim, n_devices=1, towers=towers, plan=plan
        )
        delivered = []
        for t in (50.0, 150.0, 350.0):
            sim.schedule_at(
                t,
                lambda: network.uplink(
                    devices[0],
                    Message(MessageKind.APP_TRAFFIC, "d0", 600),
                    on_delivered=lambda m, r: delivered.append(sim.now),
                ),
            )
        sim.run(until=400.0)
        # Message at t=150 fell into the outage window.
        assert len(delivered) == 2
        assert injector.stats.outage_drops == 1
        assert injector.stats.tower_failures == 1
        assert injector.stats.tower_restores == 1

    def test_devices_reassociate_to_surviving_tower(self):
        sim = Simulator(seed=2)
        _, network, registry, injector, devices, _ = self.two_tower_setup(
            sim, n_devices=1
        )
        # CENTER=(500, 500) is nearest to "west".
        assert registry.serving_tower("d0").tower_id == "west"
        registry.fail_tower("west")
        assert registry.serving_tower("d0").tower_id == "east"
        registry.restore_tower("west")
        assert registry.serving_tower("d0").tower_id == "west"

    def test_total_outage_keeps_attachment_but_drops(self):
        sim = Simulator(seed=2)
        towers = [ENodeB("only", CENTER, coverage_radius_m=5000.0)]
        _, network, registry, injector, devices, _ = chaos_setup(
            sim, n_devices=1, towers=towers
        )
        registry.fail_tower("only")
        assert registry.serving_tower("d0").tower_id == "only"
        assert not registry.serving_tower_operational("d0")
        assert registry.operational_towers() == []


class TestPartitionAndChurn:
    def test_partition_reroutes_and_heals(self):
        sim = Simulator(seed=2)
        plan = FaultPlan().partition(100.0, heal_after=100.0)
        server, network, _, injector, _, _ = chaos_setup(sim, plan=plan)
        sim.run(until=150.0)
        assert not network.sense_aid_path_available
        assert not server.crashed  # partition is not a crash
        sim.run(until=250.0)
        assert network.sense_aid_path_available
        assert injector.stats.partitions == 1
        assert injector.stats.heals == 1

    def test_conditional_event_skipped(self):
        sim = Simulator(seed=2)
        plan = FaultPlan()
        plan.partition(100.0, condition=lambda: False)
        _, network, _, injector, _, _ = chaos_setup(sim, plan=plan)
        sim.run(until=150.0)
        assert network.sense_aid_path_available
        assert injector.stats.events_skipped == 1

    def test_kill_device_powers_off_client_and_drops_messages(self):
        sim = Simulator(seed=2)
        plan = FaultPlan().kill_device(100.0, "d0")
        server, network, _, injector, devices, clients = chaos_setup(
            sim, n_devices=2, plan=plan
        )
        sim.run(until=150.0)
        assert not clients[0].powered
        assert injector.is_dead("d0")
        # Its messages die in the network now.
        network.uplink(devices[0], Message(MessageKind.APP_TRAFFIC, "d0", 600))
        sim.run(until=200.0)
        assert injector.stats.dead_device_drops == 1
        # A killed client ignores later assignments.
        server.submit_task(
            make_spec(spatial_density=1, sampling_duration_s=600.0), lambda p: None
        )
        sim.run(until=900.0)
        assert clients[0].stats.assignments_received == 0

    def test_abrupt_deregistration_removes_server_record(self):
        sim = Simulator(seed=2)
        plan = FaultPlan().deregister_device(100.0, "d1")
        server, _, _, injector, _, clients = chaos_setup(
            sim, n_devices=2, plan=plan
        )
        sim.run(until=150.0)
        assert "d1" not in server.devices
        assert injector.stats.devices_deregistered == 1
        # The client believes it is still registered — that is the
        # point of an *abrupt* fault.
        assert clients[1].registered


class TestDeterminismIsolation:
    """Satellite: enabling faults must not perturb the other streams."""

    def world_fingerprint(self, *, with_faults: bool):
        sim = Simulator(seed=99)
        towers = [ENodeB("t0", CENTER, coverage_radius_m=5000.0)]
        registry = TowerRegistry(towers)
        network = CellularNetwork(sim)
        server = SenseAidServer(
            sim, registry, network, SenseAidConfig(mode=ServerMode.COMPLETE)
        )
        if with_faults:
            FaultInjector(
                sim,
                network,
                registry,
                server=server,
                loss_model=GilbertElliott(
                    p_good_to_bad=0.5, p_bad_to_good=0.2, loss_bad=1.0
                ),
                delay_probability=0.5,
                delay_range_s=(1.0, 10.0),
                duplicate_probability=0.3,
            )
        devices = []
        for i in range(4):
            device = make_device(sim, f"d{i}", position=CENTER)
            SenseAidClient(sim, device, server, network).register()
            device.traffic.start()
            devices.append(device)
        server.submit_task(
            make_spec(
                spatial_density=2,
                sampling_period_s=600.0,
                sampling_duration_s=3000.0,
            ),
            lambda p: None,
        )
        sim.run(until=3100.0)
        server.shutdown()
        # Mobility, background traffic, and sensor noise must be
        # byte-identical between the arms: they draw from their own
        # named streams.
        return [
            (
                d.traffic.sessions,
                round(d.position().x, 9),
                round(d.position().y, 9),
            )
            for d in devices
        ]

    def test_same_seed_identical_world_with_and_without_faults(self):
        assert self.world_fingerprint(with_faults=False) == self.world_fingerprint(
            with_faults=True
        )

    def test_network_builtin_loss_uses_dedicated_streams(self):
        """The i.i.d. loss/delay knobs draw from network:loss and
        network:delay only — traffic draws stay identical."""

        def traffic_sessions(loss, jitter):
            sim = Simulator(seed=123)
            network = CellularNetwork(
                sim, loss_probability=loss, delay_jitter_s=jitter
            )
            device = make_device(sim, position=CENTER)
            device.traffic.start()
            for i in range(10):
                sim.schedule_at(
                    i * 30.0,
                    lambda: network.uplink(
                        device, Message(MessageKind.APP_TRAFFIC, "d", 600)
                    ),
                )
            sim.run(until=2000.0)
            return device.traffic.sessions

        assert traffic_sessions(0.0, 0.0) == traffic_sessions(0.5, 3.0)

    def test_same_seed_same_fault_decisions(self):
        def loss_count():
            sim = Simulator(seed=31)
            _, network, _, injector, devices, _ = chaos_setup(
                sim,
                n_devices=1,
                loss_model=GilbertElliott(
                    p_good_to_bad=0.3, p_bad_to_good=0.3, loss_bad=0.9
                ),
            )
            for i in range(25):
                sim.schedule_at(
                    i * 60.0,
                    lambda: network.uplink(
                        devices[0], Message(MessageKind.APP_TRAFFIC, "d0", 600)
                    ),
                )
            sim.run(until=26 * 60.0)
            return injector.stats.losses_injected

        assert loss_count() == loss_count()

    def test_double_hook_install_rejected(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        FaultInjector(sim, network)
        with pytest.raises(RuntimeError):
            FaultInjector(sim, network)
