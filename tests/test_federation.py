"""Tests for the distributed (federated) edge deployment."""

from __future__ import annotations

import pytest

from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.federation import EdgeRegionSpec, FederatedSenseAid
from repro.core.tasks import TaskSpec
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point
from repro.environment.mobility import MobilityModel
from repro.sim.engine import Simulator
from tests.conftest import make_device

WEST = Point(500.0, 500.0)
EAST = Point(2500.0, 500.0)


class _Teleporter(MobilityModel):
    """Moves instantly from one point to another at a switch time."""

    def __init__(self, before: Point, after: Point, switch_at: float) -> None:
        self._before = before
        self._after = after
        self._switch_at = switch_at

    def position_at(self, time: float) -> Point:
        return self._before if time < self._switch_at else self._after


def make_federation(sim, *, rebalance_period_s=60.0):
    network = CellularNetwork(sim)
    federation = FederatedSenseAid(
        sim,
        network,
        [
            EdgeRegionSpec("west", WEST),
            EdgeRegionSpec("east", EAST),
        ],
        SenseAidConfig(mode=ServerMode.COMPLETE),
        rebalance_period_s=rebalance_period_s,
    )
    return network, federation


def make_client(sim, network, federation, device_id, position):
    device = make_device(sim, device_id, position=position)
    client = SenseAidClient(sim, device, federation.instance("west"), network)
    federation.register(client)
    return client


def make_task(center, **kwargs) -> TaskSpec:
    defaults = dict(
        sensor_type=SensorType.BAROMETER,
        center=center,
        area_radius_m=800.0,
        spatial_density=1,
        sampling_period_s=300.0,
        sampling_duration_s=600.0,
    )
    defaults.update(kwargs)
    return TaskSpec(**defaults)


class TestTopology:
    def test_requires_regions(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FederatedSenseAid(sim, CellularNetwork(sim), [])

    def test_unique_region_ids(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FederatedSenseAid(
                sim,
                CellularNetwork(sim),
                [EdgeRegionSpec("x", WEST), EdgeRegionSpec("x", EAST)],
            )

    def test_voronoi_routing(self):
        sim = Simulator()
        _, federation = make_federation(sim)
        assert federation.region_for(Point(100.0, 500.0)) == "west"
        assert federation.region_for(Point(2900.0, 500.0)) == "east"

    def test_unknown_region(self):
        sim = Simulator()
        _, federation = make_federation(sim)
        with pytest.raises(KeyError):
            federation.instance("north")


class TestRegistration:
    def test_device_lands_on_nearest_instance(self):
        sim = Simulator()
        network, federation = make_federation(sim)
        client = make_client(sim, network, federation, "d-east", EAST)
        assert federation.home_region("d-east") == "east"
        assert client.server is federation.instance("east")
        assert "d-east" in federation.instance("east").devices

    def test_devices_per_region(self):
        sim = Simulator()
        network, federation = make_federation(sim)
        make_client(sim, network, federation, "w1", WEST)
        make_client(sim, network, federation, "w2", WEST)
        make_client(sim, network, federation, "e1", EAST)
        assert federation.devices_per_region() == {"west": 2, "east": 1}

    def test_deregister(self):
        sim = Simulator()
        network, federation = make_federation(sim)
        client = make_client(sim, network, federation, "d", WEST)
        federation.deregister("d")
        assert not client.registered
        with pytest.raises(KeyError):
            federation.home_region("d")


class TestHandoff:
    def test_moving_device_is_handed_over(self):
        sim = Simulator()
        network, federation = make_federation(sim, rebalance_period_s=30.0)
        device = make_device(sim, "walker", position=WEST)
        device.mobility = _Teleporter(WEST, EAST, switch_at=100.0)
        client = SenseAidClient(sim, device, federation.instance("west"), network)
        federation.register(client)
        assert federation.home_region("walker") == "west"
        sim.run(until=150.0)
        assert federation.home_region("walker") == "east"
        assert federation.handoffs == 1
        assert "walker" in federation.instance("east").devices
        assert "walker" not in federation.instance("west").devices

    def test_stationary_device_not_handed_over(self):
        sim = Simulator()
        network, federation = make_federation(sim, rebalance_period_s=30.0)
        make_client(sim, network, federation, "still", WEST)
        sim.run(until=500.0)
        assert federation.handoffs == 0

    def test_handoff_preserves_service(self):
        """A device handed over keeps serving tasks in its new region."""
        sim = Simulator()
        network, federation = make_federation(sim, rebalance_period_s=30.0)
        device = make_device(sim, "walker", position=WEST)
        device.mobility = _Teleporter(WEST, EAST, switch_at=100.0)
        client = SenseAidClient(sim, device, federation.instance("west"), network)
        federation.register(client)
        sim.run(until=150.0)
        data = []
        federation.submit_task(make_task(EAST), data.append)
        sim.run(until=800.0)
        assert len(data) == 2  # both sampling instants served


class TestTaskRouting:
    def test_task_routed_by_center(self):
        sim = Simulator()
        network, federation = make_federation(sim)
        make_client(sim, network, federation, "w1", WEST)
        region = federation.submit_task(make_task(WEST), lambda p: None)
        assert region == "west"
        sim.run(until=700.0)
        assert federation.instance("west").stats.requests_issued == 2
        assert federation.instance("east").stats.requests_issued == 0

    def test_independent_campaigns_per_region(self):
        sim = Simulator()
        network, federation = make_federation(sim)
        make_client(sim, network, federation, "w1", WEST)
        make_client(sim, network, federation, "e1", EAST)
        west_data, east_data = [], []
        federation.submit_task(make_task(WEST), west_data.append)
        federation.submit_task(make_task(EAST), east_data.append)
        sim.run(until=700.0)
        assert len(west_data) == 2
        assert len(east_data) == 2
        assert federation.total_data_points() == 4
        assert federation.total_requests_issued() == 4

    def test_shutdown_stops_instances(self):
        sim = Simulator()
        network, federation = make_federation(sim)
        federation.shutdown()  # must not raise; rebalancer stopped
        sim.run(until=1000.0)
        assert federation.handoffs == 0
