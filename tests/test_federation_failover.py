"""Tests for edge-instance failover in the federated deployment."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from tests.test_federation import (
    EAST,
    WEST,
    make_client,
    make_federation,
    make_task,
)


class TestBackupSelection:
    def test_nearest_healthy_sibling(self):
        sim = Simulator()
        _, federation = make_federation(sim)
        assert federation.backup_region_for("west") == "east"
        assert federation.backup_region_for("east") == "west"

    def test_no_backup_when_all_down(self):
        sim = Simulator()
        _, federation = make_federation(sim)
        federation.instance("east").crash()
        assert federation.backup_region_for("west") is None


class TestFailover:
    def _failing_setup(self):
        sim = Simulator()
        network, federation = make_federation(sim, rebalance_period_s=1e6)
        federation.enable_failover(check_period_s=30.0)
        make_client(sim, network, federation, "w1", WEST)
        make_client(sim, network, federation, "w2", WEST)
        make_client(sim, network, federation, "e1", EAST)
        return sim, network, federation

    def test_devices_migrate_to_backup(self):
        sim, network, federation = self._failing_setup()
        federation.instance("west").crash()
        sim.run(until=100.0)
        assert federation.failovers == 1
        assert federation.home_region("w1") == "east"
        assert federation.home_region("w2") == "east"
        assert "w1" in federation.instance("east").devices

    def test_tasks_resume_on_backup(self):
        sim, network, federation = self._failing_setup()
        data = []
        federation.submit_task(
            make_task(WEST, spatial_density=1, sampling_period_s=300.0,
                      sampling_duration_s=None, start_time=0.0, end_time=3600.0),
            data.append,
        )
        sim.run(until=350.0)
        collected_before = len(data)
        assert collected_before >= 1
        federation.instance("west").crash()
        sim.run(until=3700.0)
        # The backup carried the campaign to its original end time.
        assert len(data) > collected_before
        east_issued = federation.instance("east").stats.requests_issued
        assert east_issued >= 5

    def test_sense_aid_path_restored_after_takeover(self):
        sim, network, federation = self._failing_setup()
        federation.submit_task(
            make_task(WEST, spatial_density=1), lambda p: None
        )
        federation.instance("west").crash()
        assert not network.sense_aid_path_available
        sim.run(until=100.0)
        assert network.sense_aid_path_available

    def test_recovered_instance_does_not_double_schedule(self):
        sim, network, federation = self._failing_setup()
        data = []
        federation.submit_task(
            make_task(WEST, spatial_density=1, sampling_period_s=600.0,
                      sampling_duration_s=None, start_time=0.0, end_time=3600.0),
            data.append,
        )
        sim.run(until=50.0)
        federation.instance("west").crash()
        sim.run(until=700.0)
        federation.recover_instance("west")
        sim.run(until=3700.0)
        # Each sampling instant must produce at most one reading
        # (density 1): no duplicates from the recovered instance.
        times = sorted(round(p.sensed_at) for p in data)
        assert len(times) == len(set(times))

    def test_recover_then_rebalance_returns_devices_home(self):
        sim, network, federation = self._failing_setup()
        federation.instance("west").crash()
        sim.run(until=100.0)
        assert federation.home_region("w1") == "east"
        federation.recover_instance("west")
        # recover_instance is a cold restart: new incarnation epoch.
        assert federation.instance("west").epoch == 2
        assert not federation.instance("west").crashed
        moved = federation.rebalance()
        assert moved == 2  # w1 and w2 go home; e1 stays east
        for device_id in ("w1", "w2"):
            assert federation.home_region(device_id) == "west"
            assert device_id in federation.instance("west").devices
            assert device_id not in federation.instance("east").devices
        # The round-trip left no duplicate registrations behind: a
        # second rebalance finds everyone already home.
        assert federation.rebalance() == 0

    def test_recovered_instance_can_fail_over_again(self):
        sim, network, federation = self._failing_setup()
        federation.instance("west").crash()
        sim.run(until=100.0)
        assert federation.failovers == 1
        federation.recover_instance("west")
        federation.rebalance()
        federation.instance("west").crash()
        sim.run(until=200.0)
        assert federation.failovers == 2
        assert federation.home_region("w1") == "east"

    def test_failover_without_monitor_never_triggers(self):
        sim = Simulator()
        network, federation = make_federation(sim)
        make_client(sim, network, federation, "w1", WEST)
        federation.instance("west").crash()
        sim.run(until=500.0)
        assert federation.failovers == 0

    def test_rebalancer_avoids_crashed_instances(self):
        """Regression: after a failover, periodic rebalancing must not
        hand devices back to the dead instance even if it is the
        Voronoi owner of their position."""
        sim = Simulator()
        network, federation = make_federation(sim, rebalance_period_s=20.0)
        federation.enable_failover(check_period_s=30.0)
        make_client(sim, network, federation, "w1", WEST)  # stays in west
        federation.instance("west").crash()
        sim.run(until=200.0)
        assert federation.home_region("w1") == "east"
        assert "w1" not in federation.instance("west").devices

    def test_registration_avoids_crashed_instance(self):
        sim = Simulator()
        network, federation = make_federation(sim)
        federation.instance("west").crash()
        client = make_client(sim, network, federation, "newbie", WEST)
        assert federation.home_region("newbie") == "east"

    def test_enable_failover_twice_rejected(self):
        sim = Simulator()
        _, federation = make_federation(sim)
        federation.enable_failover()
        with pytest.raises(RuntimeError):
            federation.enable_failover()

    def test_invalid_check_period(self):
        sim = Simulator()
        _, federation = make_federation(sim)
        with pytest.raises(ValueError):
            federation.enable_failover(check_period_s=0.0)


class TestChurnDuringHandoff:
    """Devices that deregister, die, or lose their server-side record
    while a takeover or rebalance is in flight must not be resurrected
    or crash the handover loop."""

    def _churn_setup(self):
        sim = Simulator()
        network, federation = make_federation(sim, rebalance_period_s=1e6)
        federation.enable_failover(check_period_s=30.0)
        clients = {
            "w1": make_client(sim, network, federation, "w1", WEST),
            "w2": make_client(sim, network, federation, "w2", WEST),
            "e1": make_client(sim, network, federation, "e1", EAST),
        }
        return sim, network, federation, clients

    def test_deregistered_client_not_resurrected_by_takeover(self):
        sim, network, federation, clients = self._churn_setup()
        clients["w1"].deregister()  # user ended the session client-side
        federation.instance("west").crash()
        sim.run(until=100.0)
        assert federation.failovers == 1
        # w2 failed over; w1's ended session stayed ended.
        assert federation.home_region("w2") == "east"
        assert "w1" not in federation.instance("east").devices
        assert not clients["w1"].registered
        assert federation.home_region("w1") == "west"

    def test_powered_off_client_not_dragged_to_backup(self):
        sim, network, federation, clients = self._churn_setup()
        clients["w2"].power_off()  # battery death: no goodbye
        federation.instance("west").crash()
        sim.run(until=100.0)
        assert federation.failovers == 1
        assert federation.home_region("w1") == "east"
        assert "w2" not in federation.instance("east").devices
        assert federation.home_region("w2") == "west"

    def test_server_side_record_loss_then_crash_reestablishes(self):
        sim, network, federation, clients = self._churn_setup()
        # The instance forgets w1 (fault injection) while the client
        # still believes it has a session.
        federation.instance("west").deregister_device("w1")
        assert clients["w1"].registered
        federation.instance("west").crash()
        sim.run(until=100.0)  # takeover must not KeyError on the orphan
        assert federation.failovers == 1
        assert federation.home_region("w1") == "east"
        assert "w1" in federation.instance("east").devices
        assert clients["w1"].registered

    def test_rebalance_skips_churned_clients_after_recovery(self):
        sim, network, federation, clients = self._churn_setup()
        federation.instance("west").crash()
        sim.run(until=100.0)
        assert federation.home_region("w1") == "east"
        # Churn while everyone is parked on the backup:
        clients["w1"].deregister()
        clients["w2"].power_off()
        federation.recover_instance("west")
        moved = federation.rebalance()
        # Nobody eligible actually needs to move home: w1 ended its
        # session, w2 is dead, e1 was east all along.
        assert moved == 0
        assert "w1" not in federation.instance("west").devices
        assert "w2" not in federation.instance("west").devices
        assert federation.rebalance() == 0

    def test_campaign_survives_churn_during_takeover(self):
        sim, network, federation, clients = self._churn_setup()
        data = []
        federation.submit_task(
            make_task(WEST, spatial_density=1, sampling_period_s=300.0,
                      sampling_duration_s=None, start_time=0.0, end_time=3600.0),
            data.append,
        )
        sim.run(until=350.0)
        before = len(data)
        assert before >= 1
        clients["w1"].deregister()  # churn in the same instant window
        federation.instance("west").crash()
        sim.run(until=3700.0)
        # w2 alone carries the campaign on the backup.
        assert len(data) > before
        assert federation.failovers == 1
