"""Tests for network message loss and deadline reassignment (§8:
failures in the data collection)."""

from __future__ import annotations

import pytest

from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.cellular.packets import Message, MessageKind
from repro.clientlib.client import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.sim.engine import Simulator
from tests.conftest import make_device
from tests.test_core_server import CENTER, make_spec


def lossy_setup(sim, n_devices, *, loss, reassign_margin_s=None):
    registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)])
    network = CellularNetwork(sim, loss_probability=loss)
    config = SenseAidConfig(
        mode=ServerMode.COMPLETE,
        reassign_margin_s=reassign_margin_s,
        # Forced uploads must precede the reassignment check.
        deadline_grace_s=(
            reassign_margin_s * 2 if reassign_margin_s is not None else 5.0
        ),
    )
    server = SenseAidServer(sim, registry, network, config)
    devices, clients = [], []
    for i in range(n_devices):
        device = make_device(sim, f"d{i}", position=CENTER)
        client = SenseAidClient(sim, device, server, network)
        client.register()
        devices.append(device)
        clients.append(client)
    return server, network, devices, clients


class TestNetworkLoss:
    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            CellularNetwork(Simulator(), loss_probability=1.0)
        with pytest.raises(ValueError):
            CellularNetwork(Simulator(), loss_probability=-0.1)

    def test_lossless_by_default(self):
        sim = Simulator()
        network = CellularNetwork(sim)
        assert network.loss_probability == 0.0

    def test_losses_counted_and_energy_still_spent(self):
        sim = Simulator(seed=3)
        network = CellularNetwork(sim, loss_probability=0.5)
        device = make_device(sim, position=CENTER)
        delivered = []
        for i in range(20):
            sim.schedule_at(
                i * 60.0,
                lambda: network.uplink(
                    device,
                    Message(MessageKind.APP_TRAFFIC, "d", 600),
                    on_delivered=lambda m, r: delivered.append(m),
                ),
            )
        sim.run(until=20 * 60.0)
        assert network.messages_lost > 0
        assert len(delivered) + network.messages_lost == 20
        # The radio transmitted all 20 regardless of loss.
        assert device.modem.transfers == 20

    def test_loss_is_deterministic_per_seed(self):
        def lost(seed):
            sim = Simulator(seed=seed)
            network = CellularNetwork(sim, loss_probability=0.5)
            device = make_device(sim, position=CENTER)
            for i in range(10):
                sim.schedule_at(
                    i * 60.0,
                    lambda: network.uplink(
                        device, Message(MessageKind.APP_TRAFFIC, "d", 600)
                    ),
                )
            sim.run(until=700.0)
            return network.messages_lost

        assert lost(9) == lost(9)


class TestReassignment:
    def test_lost_uploads_break_requests_without_reassignment(self):
        sim = Simulator(seed=5)
        server, network, _, _ = lossy_setup(sim, 6, loss=0.6)
        server.submit_task(
            make_spec(
                spatial_density=2,
                sampling_period_s=600.0,
                sampling_duration_s=3600.0,
            ),
            lambda p: None,
        )
        sim.run(until=3700.0)
        assert server.stats.requests_satisfied < server.stats.requests_scheduled

    def test_reassignment_recovers_completeness(self):
        def satisfied_fraction(margin):
            sim = Simulator(seed=5)
            server, network, _, _ = lossy_setup(
                sim, 6, loss=0.6, reassign_margin_s=margin
            )
            server.submit_task(
                make_spec(
                    spatial_density=2,
                    sampling_period_s=600.0,
                    sampling_duration_s=3600.0,
                ),
                lambda p: None,
            )
            sim.run(until=3700.0)
            return server.stats.requests_satisfied / server.stats.requests_scheduled

        without = satisfied_fraction(None)
        with_reassign = satisfied_fraction(120.0)
        assert with_reassign > without

    def test_reassignments_counted(self):
        sim = Simulator(seed=5)
        server, _, _, _ = lossy_setup(sim, 6, loss=0.6, reassign_margin_s=120.0)
        server.submit_task(
            make_spec(
                spatial_density=2,
                sampling_period_s=600.0,
                sampling_duration_s=3600.0,
            ),
            lambda p: None,
        )
        sim.run(until=3700.0)
        assert server.stats.reassignments > 0

    def test_no_reassignment_when_all_arrived(self):
        sim = Simulator()
        server, _, _, _ = lossy_setup(sim, 4, loss=0.0, reassign_margin_s=60.0)
        server.submit_task(
            make_spec(spatial_density=2, sampling_duration_s=600.0), lambda p: None
        )
        sim.run(until=700.0)
        assert server.stats.reassignments == 0
        assert server.stats.requests_satisfied == 1

    def test_substitutes_exclude_original_assignees(self):
        sim = Simulator(seed=5)
        server, _, _, _ = lossy_setup(sim, 6, loss=0.6, reassign_margin_s=120.0)
        server.submit_task(
            make_spec(
                spatial_density=2,
                sampling_period_s=600.0,
                sampling_duration_s=1800.0,
            ),
            lambda p: None,
        )
        sim.run(until=1900.0)
        for tracking in server._tracking.values():
            assert len(tracking.assigned) == len(set(tracking.assigned))

    def test_invalid_margin(self):
        with pytest.raises(ValueError):
            SenseAidConfig(reassign_margin_s=0.0)


class TestUnresponsiveStrikes:
    def _run_with_dead_client(self, strikes):
        sim = Simulator(seed=5)
        server, network, devices, clients = lossy_setup(
            sim, 3, loss=0.0, reassign_margin_s=60.0
        )
        object.__setattr__(server.config, "unresponsive_strikes", strikes)
        # d0's client vanishes: assignments reach it but nothing happens.
        server._assignment_handlers["d0"] = lambda assignment: None
        server.submit_task(
            make_spec(
                spatial_density=1,
                sampling_period_s=600.0,
                sampling_duration_s=6 * 600.0,
            ),
            lambda p: None,
        )
        sim.run(until=6 * 600.0 + 60.0)
        return server

    def test_silent_device_struck_out(self):
        server = self._run_with_dead_client(strikes=2)
        record = server.devices.record("d0")
        assert not record.responsive
        # After exclusion, later requests go to the healthy devices.
        late = server.selection_log[-1]
        assert "d0" not in late.selected

    def test_strikes_disabled(self):
        server = self._run_with_dead_client(strikes=None)
        assert server.devices.record("d0").responsive

    def test_delivery_clears_strikes(self):
        sim = Simulator(seed=5)
        server, network, devices, clients = lossy_setup(
            sim, 2, loss=0.0, reassign_margin_s=60.0
        )
        server.devices.record("d0").missed_deliveries = 2
        server.devices.mark_unresponsive("d1")
        server.submit_task(
            make_spec(spatial_density=1, sampling_duration_s=600.0), lambda p: None
        )
        sim.run(until=700.0)
        assert server.devices.record("d0").missed_deliveries == 0

    def test_invalid_strikes(self):
        with pytest.raises(ValueError):
            SenseAidConfig(unresponsive_strikes=0)

    def test_margin_must_fit_inside_grace(self):
        with pytest.raises(ValueError):
            SenseAidConfig(deadline_grace_s=5.0, reassign_margin_s=60.0)


class TestReassignmentEdgeCases:
    """The unhappy paths of ``_reassign_missing``: nobody left to draft,
    substitutes that are just as dead, and the check racing a task
    deletion."""

    def _silence(self, server, device_id):
        """Assignments still reach the device but nothing comes back."""
        server._assignment_handlers[device_id] = lambda assignment: None

    def test_no_qualified_substitute_available(self):
        # Every registered device is already assigned, so when one goes
        # silent there is nobody to draft: the check must be a no-op,
        # not a crash, and the request simply fails.
        sim = Simulator(seed=5)
        server, _, _, _ = lossy_setup(sim, 2, loss=0.0, reassign_margin_s=60.0)
        self._silence(server, "d0")
        server.submit_task(
            make_spec(
                spatial_density=2, sampling_period_s=None, sampling_duration_s=None
            ),
            lambda p: None,
        )
        sim.run(until=400.0)
        server.shutdown()
        assert server.stats.reassignments == 0
        assert server.stats.requests_satisfied == 0

    def test_substitute_also_times_out(self):
        # The drafted substitute is no healthier than the original;
        # reassignment happens but the request still fails, and the
        # failure is charged to the request, not raised as an error.
        sim = Simulator(seed=5)
        server, _, _, _ = lossy_setup(sim, 3, loss=0.0, reassign_margin_s=60.0)
        for device_id in ("d0", "d1", "d2"):
            self._silence(server, device_id)
        server.submit_task(
            make_spec(
                spatial_density=1, sampling_period_s=None, sampling_duration_s=None
            ),
            lambda p: None,
        )
        sim.run(until=400.0)
        server.shutdown()
        assert server.stats.reassignments >= 1
        assert server.stats.requests_satisfied == 0
        assert server.stats.data_points == 0

    def test_reassignment_races_task_deletion(self):
        # The task is deleted after the reassignment check was
        # scheduled but before it fires: the check must notice the task
        # is gone and draft nobody.
        sim = Simulator(seed=5)
        server, _, _, _ = lossy_setup(sim, 3, loss=0.0, reassign_margin_s=60.0)
        self._silence(server, "d0")
        self._silence(server, "d1")
        self._silence(server, "d2")
        task_id = server.submit_task(
            make_spec(
                spatial_density=1, sampling_period_s=None, sampling_duration_s=None
            ),
            lambda p: None,
        )
        # One-shot deadline is 120 s, margin 60 s -> check fires at 60.
        sim.schedule_at(30.0, server.delete_task, task_id)
        sim.run(until=400.0)
        server.shutdown()
        assert server.stats.reassignments == 0
