"""Tests for overload control: the bounded admission queue, priority
shedding, the circuit breaker, Retry-After hints, and the client side
honoring them."""

from __future__ import annotations

import pytest

from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.clientlib.client import SenseAidClient
from repro.core.config import (
    OverloadPolicy,
    RetryPolicy,
    SenseAidConfig,
    ServerMode,
)
from repro.core.overload import (
    AdmissionController,
    RequestClass,
    ServerOverloadedError,
)
from repro.core.server import SenseAidServer
from repro.faults import FaultInjector, FaultPlan
from repro.sim.engine import Simulator
from repro.sim.simlog import structured_log
from tests.conftest import make_device
from tests.test_core_server import CENTER, make_spec

RETRY = RetryPolicy(
    max_attempts=4,
    ack_timeout_s=20.0,
    backoff_base_s=10.0,
    backoff_multiplier=2.0,
    jitter_fraction=0.0,
    tail_wait_max_s=30.0,
)


def overload_setup(sim, policy, n_devices=2, *, retry=RETRY, plan=None):
    registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)])
    network = CellularNetwork(sim)
    server = SenseAidServer(
        sim,
        registry,
        network,
        SenseAidConfig(
            mode=ServerMode.COMPLETE, deadline_grace_s=60.0, overload=policy
        ),
    )
    injector = None
    if plan is not None:
        injector = FaultInjector(sim, network, registry, server=server, plan=plan)
    clients = []
    for i in range(n_devices):
        device = make_device(sim, f"d{i}", position=CENTER)
        client = SenseAidClient(sim, device, server, network, retry_policy=retry)
        client.register()
        if injector is not None:
            injector.adopt_client(client)
        clients.append(client)
    return server, network, injector, clients


class TestOverloadPolicyConfig:
    def test_defaults_valid(self):
        OverloadPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_capacity": 0},
            {"service_rate_per_s": 0.0},
            {"registration_shed_fraction": 1.5},
            {"query_shed_fraction": -0.1},
            {"retry_after_base_s": -1.0},
            {"breaker_threshold": 0},
            {"breaker_cooldown_s": 0.0},
            # Priority order must hold: queries go first, registrations last.
            {"query_shed_fraction": 0.9, "upload_shed_fraction": 0.5},
            {"upload_shed_fraction": 1.0, "registration_shed_fraction": 0.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            OverloadPolicy(**kwargs)


def make_controller(sim, **overrides):
    params = dict(
        queue_capacity=8,
        service_rate_per_s=1.0,
        registration_shed_fraction=1.0,
        upload_shed_fraction=0.75,
        query_shed_fraction=0.5,
        retry_after_base_s=2.0,
        breaker_threshold=100,
        breaker_cooldown_s=30.0,
    )
    params.update(overrides)
    return AdmissionController(sim, OverloadPolicy(**params))


class TestAdmissionController:
    def test_priority_thresholds(self):
        ctrl = make_controller(Simulator(seed=1))
        # Queries are refused first (threshold 8 * 0.5 = 4) ...
        for _ in range(4):
            assert ctrl.admit(RequestClass.QUERY).admitted
        assert not ctrl.admit(RequestClass.QUERY).admitted
        # ... uploads survive until 8 * 0.75 = 6 ...
        assert ctrl.admit(RequestClass.UPLOAD).admitted
        assert ctrl.admit(RequestClass.UPLOAD).admitted
        assert not ctrl.admit(RequestClass.UPLOAD).admitted
        # ... and registrations only fail once the queue is full.
        assert ctrl.admit(RequestClass.REGISTRATION).admitted
        assert ctrl.admit(RequestClass.REGISTRATION).admitted
        decision = ctrl.admit(RequestClass.REGISTRATION)
        assert not decision.admitted
        assert decision.reason == "queue_full"
        assert ctrl.stats.shed["registration"] == 1

    def test_queue_depth_is_bounded_by_capacity(self):
        ctrl = make_controller(Simulator(seed=1))
        for _ in range(50):
            ctrl.admit(RequestClass.REGISTRATION)
        assert ctrl.stats.max_queue_depth <= ctrl.policy.queue_capacity
        assert ctrl.queue_depth <= ctrl.policy.queue_capacity

    def test_fluid_drain_reopens_admission(self):
        sim = Simulator(seed=1)
        ctrl = make_controller(sim)
        for _ in range(4):
            ctrl.admit(RequestClass.QUERY)
        assert not ctrl.admit(RequestClass.QUERY).admitted
        sim.run(until=2.0)  # drains 2 requests at 1/s
        assert ctrl.queue_depth == pytest.approx(2.0)
        assert ctrl.admit(RequestClass.QUERY).admitted

    def test_retry_after_scales_with_overshoot(self):
        ctrl = make_controller(Simulator(seed=1))
        for _ in range(4):
            ctrl.admit(RequestClass.QUERY)
        first = ctrl.admit(RequestClass.QUERY)
        # Overshoot of 1 over the class threshold at 1/s, plus base.
        assert first.retry_after_s == pytest.approx(2.0 + 1.0)
        for _ in range(2):
            ctrl.admit(RequestClass.UPLOAD)
        deeper = ctrl.admit(RequestClass.QUERY)
        assert deeper.retry_after_s > first.retry_after_s

    def test_breaker_opens_after_consecutive_sheds(self):
        sim = Simulator(seed=1)
        ctrl = make_controller(sim, breaker_threshold=3)
        for _ in range(4):
            ctrl.admit(RequestClass.QUERY)
        for _ in range(3):
            assert not ctrl.admit(RequestClass.QUERY).admitted
        assert ctrl.breaker_open
        assert ctrl.stats.breaker_opens == 1
        rejected = ctrl.admit(RequestClass.UPLOAD)
        assert not rejected.admitted
        assert rejected.reason == "breaker_open"
        # The hint is the remaining cooldown.
        assert rejected.retry_after_s == pytest.approx(30.0)
        assert ctrl.stats.breaker_rejects == 1
        # Registrations pass the breaker (shed only on a full queue).
        assert ctrl.admit(RequestClass.REGISTRATION).admitted

    def test_breaker_closes_after_cooldown(self):
        sim = Simulator(seed=1)
        ctrl = make_controller(sim, breaker_threshold=3, breaker_cooldown_s=10.0)
        for _ in range(4):
            ctrl.admit(RequestClass.QUERY)
        for _ in range(3):
            ctrl.admit(RequestClass.QUERY)
        assert ctrl.breaker_open
        sim.run(until=11.0)
        assert not ctrl.breaker_open
        assert ctrl.admit(RequestClass.QUERY).admitted  # queue drained too

    def test_admission_resets_consecutive_shed_count(self):
        sim = Simulator(seed=1)
        ctrl = make_controller(sim, breaker_threshold=3)
        for _ in range(4):
            ctrl.admit(RequestClass.QUERY)
        ctrl.admit(RequestClass.QUERY)  # shed 1
        ctrl.admit(RequestClass.QUERY)  # shed 2
        ctrl.admit(RequestClass.UPLOAD)  # admitted: streak broken
        ctrl.admit(RequestClass.QUERY)  # shed 1 again
        assert not ctrl.breaker_open


class TestRetryPolicyShedDelay:
    def test_hint_dominates_when_larger(self):
        assert RETRY.shed_delay_s(1, 25.0) == 25.0

    def test_backoff_dominates_when_hint_small(self):
        # attempt 2 backoff = 20s > 5s hint
        assert RETRY.shed_delay_s(2, 5.0) == 20.0

    def test_negative_hint_clamped(self):
        assert RETRY.shed_delay_s(1, -3.0) == RETRY.backoff_s(1)


BURST_POLICY = OverloadPolicy(
    queue_capacity=16,
    service_rate_per_s=2.0,
    registration_shed_fraction=1.0,
    upload_shed_fraction=0.75,
    query_shed_fraction=0.5,
    retry_after_base_s=2.0,
    breaker_threshold=10_000,  # keep the breaker out of this scenario
    breaker_cooldown_s=30.0,
)


class TestOverloadBurstIntegration:
    def test_burst_sheds_by_priority_and_clients_recover(self, tmp_path):
        sim = Simulator(seed=71)
        # Clients hold uploads for the pre-deadline flush at ~t=540
        # (round-0 deadline 600 minus the 60s grace); the burst brackets
        # that window so real uploads contend with the synthetic flood.
        plan = FaultPlan().overload_burst(
            535.0, rate_per_s=40.0, duration_s=20.0, request_class="upload"
        )
        server, _, injector, clients = overload_setup(
            sim, BURST_POLICY, plan=plan
        )
        collected = []
        server.submit_task(
            make_spec(spatial_density=2, sampling_duration_s=1800.0),
            collected.append,
        )
        sim.run(until=1250.0)
        stats = server.admission.stats
        assert injector.stats.overload_bursts == 1
        assert injector.stats.burst_requests == 800
        # Priority order: uploads were shed, registrations never were.
        assert stats.shed["upload"] > 0
        assert stats.shed["registration"] == 0
        assert server.stats.registrations_shed == 0
        # The queue never grew past its bound.
        assert stats.max_queue_depth <= BURST_POLICY.queue_capacity
        # Real client uploads were among the shed ones, backed off per
        # the Retry-After hint, and eventually landed.
        assert server.stats.uploads_shed > 0
        assert sum(c.stats.uploads_shed for c in clients) > 0
        assert sum(c.stats.uploads_abandoned for c in clients) == 0
        # Both the round flushed mid-burst (t=540) and the following
        # round completed despite the shedding.
        assert server.stats.data_points >= 4
        assert server.stats.requests_satisfied == 2
        assert collected
        log = structured_log(sim)
        assert log.records(kind="overload.shed")
        assert log.records(kind="upload_shed")

    def test_shed_registration_is_deferred_and_retried(self):
        sim = Simulator(seed=73)
        policy = OverloadPolicy(
            queue_capacity=4,
            service_rate_per_s=0.5,
            retry_after_base_s=2.0,
            breaker_threshold=10_000,
        )
        server, network, _, _ = overload_setup(sim, policy, n_devices=0)
        for _ in range(4):
            server.admission.admit(RequestClass.REGISTRATION)  # fill the queue
        client = SenseAidClient(
            sim, make_device(sim, "late", position=CENTER), server, network,
            retry_policy=RETRY,
        )
        client.register()
        assert not client.registered
        assert client.stats.registrations_deferred == 1
        assert "late" not in server.devices
        sim.run(until=30.0)  # queue drains; deferred retry fires
        assert client.registered
        assert "late" in server.devices
        server.shutdown()

    def test_register_device_raises_when_shed(self):
        sim = Simulator(seed=75)
        policy = OverloadPolicy(
            queue_capacity=2, service_rate_per_s=0.5, breaker_threshold=10_000
        )
        server, _, _, _ = overload_setup(sim, policy, n_devices=0)
        for _ in range(2):
            server.admission.admit(RequestClass.REGISTRATION)
        device = make_device(sim, "d9", position=CENTER)
        with pytest.raises(ServerOverloadedError) as excinfo:
            server.register_device(device, lambda a: None)
        assert excinfo.value.retry_after_s > 0
        assert server.stats.registrations_shed == 1
        server.shutdown()

    def test_breaker_opens_under_sustained_burst(self):
        sim = Simulator(seed=77)
        policy = OverloadPolicy(
            queue_capacity=8,
            service_rate_per_s=1.0,
            retry_after_base_s=1.0,
            breaker_threshold=5,
            breaker_cooldown_s=20.0,
        )
        plan = FaultPlan().overload_burst(
            10.0, rate_per_s=20.0, duration_s=5.0, request_class="query"
        )
        server, _, injector, _ = overload_setup(
            sim, policy, n_devices=0, plan=plan
        )
        sim.run(until=40.0)
        stats = server.admission.stats
        assert stats.breaker_opens >= 1
        assert stats.breaker_rejects > 0
        assert structured_log(sim).records(kind="overload.breaker_open")
        server.shutdown()

    def test_plan_builder_validates_burst_parameters(self):
        with pytest.raises(ValueError):
            FaultPlan().overload_burst(0.0, rate_per_s=0.0, duration_s=1.0)
        with pytest.raises(ValueError):
            FaultPlan().overload_burst(0.0, rate_per_s=1.0, duration_s=0.0)
        with pytest.raises(ValueError):
            FaultPlan().server_crash(0.0, restart_after=0.0)

    def test_burst_requires_overload_policy(self):
        sim = Simulator(seed=79)
        registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)])
        network = CellularNetwork(sim)
        server = SenseAidServer(sim, registry, network)  # no overload config
        plan = FaultPlan().overload_burst(1.0, rate_per_s=5.0, duration_s=1.0)
        FaultInjector(sim, network, registry, server=server, plan=plan)
        with pytest.raises(RuntimeError, match="OverloadPolicy"):
            sim.run(until=2.0)
        server.shutdown()
