"""Property-based tests (hypothesis) for the admission controller.

The fluid admission queue is a small piece of analytic machinery the
whole backpressure story leans on — the service front (ISSUE 9) now
uses it as its front-door gate under a wall clock, so its invariants
get pinned here over *arbitrary* admission sequences:

- the fluid depth only moves two ways: +1 on an admitted request,
  and continuous decay at the service rate as time passes — between
  admissions it is monotonically non-increasing and exactly matches
  the closed-form drain;
- every ``queue_full`` shed carries a ``retry_after_s`` sized to the
  backlog overshoot (base pause + overshoot/service-rate), never less
  than the base pause;
- the circuit breaker opens *exactly* at ``breaker_threshold``
  consecutive sheds — not one earlier — and re-closes after
  ``breaker_cooldown_s``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import OverloadPolicy
from repro.core.overload import AdmissionController, RequestClass
from repro.service import ManualClock

POLICY = OverloadPolicy(
    queue_capacity=8,
    service_rate_per_s=2.0,
    retry_after_base_s=2.0,
    breaker_threshold=5,
    breaker_cooldown_s=30.0,
)

FRACTION = {
    RequestClass.REGISTRATION: POLICY.registration_shed_fraction,
    RequestClass.UPLOAD: POLICY.upload_shed_fraction,
    RequestClass.QUERY: POLICY.query_shed_fraction,
}

request_classes = st.sampled_from(list(RequestClass))
gaps = st.floats(min_value=0.0, max_value=6.0, allow_nan=False, allow_infinity=False)
admission_sequences = st.lists(
    st.tuples(gaps, request_classes), min_size=1, max_size=80
)


def make_controller(policy: OverloadPolicy = POLICY):
    clock = ManualClock()
    return clock, AdmissionController(clock, policy)


# ----------------------------------------------------------------------
# Fluid-queue depth
# ----------------------------------------------------------------------


@given(gaps_between=st.lists(gaps, min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_depth_monotone_and_exact_between_drains(gaps_between):
    """With no admissions, depth never rises and follows the exact
    closed-form fluid drain."""
    clock, controller = make_controller()
    for _ in range(POLICY.queue_capacity):
        controller.admit(RequestClass.REGISTRATION)
    previous = controller.queue_depth
    for dt in gaps_between:
        clock.advance(dt)
        depth = controller.queue_depth
        assert depth <= previous + 1e-9
        assert depth >= 0.0
        expected = max(0.0, previous - dt * POLICY.service_rate_per_s)
        assert depth == pytest.approx(expected, abs=1e-9)
        previous = depth


@given(admission_sequences)
@settings(max_examples=60, deadline=None)
def test_depth_moves_only_by_admission_or_drain(sequence):
    """Depth accounting over arbitrary sequences: +1 per admit (after
    the drain), unchanged by a shed, never negative, never past the
    class-capacity bound."""
    clock, controller = make_controller()
    for dt, request_class in sequence:
        clock.advance(dt)
        before = controller.queue_depth  # drains as a side effect
        decision = controller.admit(request_class)
        after = controller.queue_depth
        if decision.admitted:
            assert after == pytest.approx(before + 1.0, abs=1e-9)
        else:
            assert after == pytest.approx(before, abs=1e-9)
        assert 0.0 <= after <= POLICY.queue_capacity + 1e-9


# ----------------------------------------------------------------------
# Retry-After sizing
# ----------------------------------------------------------------------


@given(admission_sequences)
@settings(max_examples=60, deadline=None)
def test_queue_full_retry_after_sized_to_overshoot(sequence):
    clock, controller = make_controller()
    saw_shed = False
    for dt, request_class in sequence:
        clock.advance(dt)
        decision = controller.admit(request_class)
        if decision.admitted or decision.reason != "queue_full":
            continue
        saw_shed = True
        threshold = POLICY.queue_capacity * FRACTION[request_class]
        overshoot = decision.queue_depth + 1.0 - threshold
        expected = POLICY.retry_after_base_s + max(0.0, overshoot) / (
            POLICY.service_rate_per_s
        )
        assert decision.retry_after_s == pytest.approx(expected, abs=1e-9)
        assert decision.retry_after_s >= POLICY.retry_after_base_s
    # The strategy reliably produces shed-heavy sequences; nothing to
    # assert when this particular draw never overflowed the queue.
    if not saw_shed:
        assert controller.stats.total_shed == 0


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


@given(admission_sequences)
@settings(max_examples=60, deadline=None)
def test_breaker_opens_exactly_at_threshold(sequence):
    """Model-check the breaker against an independent re-implementation:
    it opens exactly when the consecutive-shed counter reaches the
    threshold while closed, and never at any other moment."""
    clock, controller = make_controller()
    consecutive = 0
    opens = 0
    open_until = None
    for dt, request_class in sequence:
        clock.advance(dt)
        now = clock.now
        breaker_open = open_until is not None and now < open_until
        assert controller.breaker_open == breaker_open
        decision = controller.admit(request_class)
        if breaker_open and request_class is not RequestClass.REGISTRATION:
            assert not decision.admitted
            assert decision.reason == "breaker_open"
            assert decision.retry_after_s == pytest.approx(open_until - now)
            assert controller.stats.breaker_opens == opens
            continue
        if decision.admitted:
            consecutive = 0
        else:
            consecutive += 1
            if consecutive >= POLICY.breaker_threshold and not breaker_open:
                opens += 1
                open_until = now + POLICY.breaker_cooldown_s
        assert controller.stats.breaker_opens == opens


def test_breaker_not_one_shed_early():
    """threshold-1 consecutive sheds leave the breaker closed; the
    threshold-th opens it."""
    clock, controller = make_controller()
    for _ in range(POLICY.queue_capacity):
        controller.admit(RequestClass.REGISTRATION)  # fill: depth == capacity
    for i in range(POLICY.breaker_threshold - 1):
        decision = controller.admit(RequestClass.REGISTRATION)
        assert not decision.admitted, f"shed {i} should be refused"
        assert not controller.breaker_open
        assert controller.stats.breaker_opens == 0
    decision = controller.admit(RequestClass.REGISTRATION)
    assert not decision.admitted
    assert controller.breaker_open
    assert controller.stats.breaker_opens == 1


def test_breaker_recloses_after_cooldown_and_admits_again():
    clock, controller = make_controller()
    for _ in range(POLICY.queue_capacity):
        controller.admit(RequestClass.REGISTRATION)
    for _ in range(POLICY.breaker_threshold):
        controller.admit(RequestClass.REGISTRATION)
    assert controller.breaker_open
    # While open: uploads/queries refused with the remaining cooldown.
    refused = controller.admit(RequestClass.UPLOAD)
    assert refused.reason == "breaker_open"
    assert refused.retry_after_s == pytest.approx(POLICY.breaker_cooldown_s)
    # Cooldown passes; the queue also drains meanwhile.
    clock.advance(POLICY.breaker_cooldown_s + 1e-6)
    assert not controller.breaker_open
    decision = controller.admit(RequestClass.UPLOAD)
    assert decision.admitted
    assert controller.stats.breaker_opens == 1
