"""Unit tests for the perf-counter layer (repro.sim.perf)."""

from __future__ import annotations

from repro.sim.engine import Simulator
from repro.sim.metrics import MetricsRegistry
from repro.sim.perf import PerfRegistry, events_per_second


class TestPerfProbe:
    def test_observe_accumulates(self):
        perf = PerfRegistry()
        probe = perf.probe("op")
        probe.observe(0.5, 10)
        probe.observe(0.25, 4)
        assert probe.calls == 2
        assert probe.wall_s == 0.75
        assert probe.items == 14
        assert probe.max_items == 10
        assert probe.items_per_call() == 7.0

    def test_zero_call_rates(self):
        probe = PerfRegistry().probe("idle")
        assert probe.items_per_call() == 0.0
        assert probe.rate_per_s() == 0.0

    def test_same_name_same_probe(self):
        perf = PerfRegistry()
        assert perf.probe("x") is perf.probe("x")


class TestMeasure:
    def test_measure_times_and_counts(self):
        perf = PerfRegistry()
        with perf.measure("work") as m:
            m.items = 42
        probe = perf.probe("work")
        assert probe.calls == 1
        assert probe.items == 42
        assert probe.wall_s >= 0.0

    def test_count_is_untimed(self):
        perf = PerfRegistry()
        perf.count("hits")
        perf.count("hits", items=3)
        probe = perf.probe("hits")
        assert probe.calls == 2
        assert probe.items == 3
        assert probe.wall_s == 0.0


class TestSnapshotAndExport:
    def test_snapshot_shape(self):
        perf = PerfRegistry()
        perf.count("a", items=2)
        snap = perf.snapshot()
        assert snap["a"]["calls"] == 1
        assert snap["a"]["items"] == 2
        assert set(snap["a"]) == {
            "calls",
            "wall_s",
            "items",
            "max_items",
            "items_per_call",
        }

    def test_export_to_metrics(self):
        perf = PerfRegistry()
        perf.count("op", items=5)
        metrics = MetricsRegistry()
        perf.export_to(metrics)
        values = metrics.counter_values()
        assert values["perf.op.calls"] == 1
        assert values["perf.op.items"] == 5

    def test_reset(self):
        perf = PerfRegistry()
        perf.count("op")
        perf.reset()
        assert perf.snapshot() == {}


def test_simulator_owns_a_perf_registry():
    sim = Simulator(seed=1)
    assert isinstance(sim.perf, PerfRegistry)
    sim.perf.count("anything")
    assert sim.perf.probe("anything").calls == 1


def test_events_per_second():
    assert events_per_second(100, 2.0) == 50.0
    assert events_per_second(100, 0.0) == 0.0
    assert events_per_second(100, None) == 0.0


def test_server_instruments_hot_paths():
    """A full little run leaves the expected probes populated."""
    from repro.cellular.enodeb import TowerRegistry, grid_towers
    from repro.cellular.network import CellularNetwork
    from repro.clientlib import SenseAidClient
    from repro.core.config import SenseAidConfig, ServerMode
    from repro.core.server import SenseAidServer
    from repro.devices.sensors import SensorType
    from repro.environment.campus import default_campus
    from repro.environment.population import PopulationConfig, build_population
    from repro.serverlib import CrowdsensingAppServer

    sim = Simulator(seed=17)
    campus = default_campus()
    registry = TowerRegistry(grid_towers(campus.width_m, campus.height_m))
    network = CellularNetwork(sim)
    devices = build_population(sim, campus, PopulationConfig(size=15))
    server = SenseAidServer(
        sim, registry, network, SenseAidConfig(mode=ServerMode.COMPLETE)
    )
    for device in devices:
        SenseAidClient(sim, device, server, network).register()
    app = CrowdsensingAppServer(server, "probe-check")
    app.task(
        SensorType.BAROMETER,
        campus.site("CS department").position,
        area_radius_m=1200.0,
        spatial_density=2,
        sampling_period_s=300.0,
        sampling_duration_s=900.0,
    )
    sim.run(until=1000.0)
    server.shutdown()

    probes = sim.perf.probes()
    assert probes["registry.devices_within"].calls > 0
    assert probes["server.qualified_devices"].calls > 0
    assert probes["server.edge_refresh"].calls > 0
    # The registry shares the simulator's perf registry via bind().
    assert registry.perf is sim.perf
    # Per-query touched devices is bounded by the fleet.
    assert probes["registry.devices_within"].max_items <= len(devices)
