"""Tests for server checkpointing and the heat-map renderer."""

from __future__ import annotations

import json

import pytest

from repro.analysis.heatmap import (
    SpatialSample,
    grid_field,
    idw_interpolate,
    render_heatmap,
)
from repro.core.persistence import (
    checkpoint_server,
    load_checkpoint,
    record_from_dict,
    record_to_dict,
    restore_server,
    save_checkpoint,
    task_from_dict,
    task_to_dict,
)
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point
from repro.sim.engine import Simulator
from tests.test_core_datastores_queues import make_record
from tests.test_core_server import make_setup, make_spec


class TestCodecs:
    def test_record_round_trip(self):
        record = make_record(
            energy_used_j=12.5,
            times_selected=3,
            battery_pct=67.0,
            last_comm_time=42.0,
            sensors=frozenset({SensorType.BAROMETER, SensorType.GPS}),
        )
        restored = record_from_dict(record_to_dict(record))
        assert restored == record

    def test_record_dict_is_json_safe(self):
        record = make_record(sensors=frozenset({SensorType.BAROMETER}))
        json.dumps(record_to_dict(record))

    def test_task_round_trip(self):
        from tests.test_core_tasks import make_task

        task = make_task(device_type="iPhone 6")
        restored = task_from_dict(task_to_dict(task))
        assert restored == task

    def test_task_dict_is_json_safe(self):
        from tests.test_core_tasks import make_task

        json.dumps(task_to_dict(make_task()))


class TestCheckpoint:
    def test_checkpoint_captures_devices_and_tasks(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        server.submit_task(make_spec(), lambda p: None)
        sim.run(until=100.0)
        snapshot = checkpoint_server(server)
        assert len(snapshot["devices"]) == 3
        assert len(snapshot["tasks"]) == 1
        assert snapshot["taken_at"] == 100.0
        json.dumps(snapshot)  # fully serialisable

    def test_save_and_load(self, tmp_path):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=2)
        path = str(tmp_path / "checkpoint.json")
        save_checkpoint(server, path)
        snapshot = load_checkpoint(path)
        assert len(snapshot["devices"]) == 2

    def test_load_rejects_unknown_version(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as f:
            json.dump({"version": 99}, f)
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_restore_into_fresh_server(self):
        # Original server: 2 devices, a 1-hour campaign; checkpoint at
        # t=700, then rebuild a brand-new server from the snapshot.
        sim = Simulator()
        server, network, devices, clients = make_setup(sim, n_devices=2)
        data = []
        server.submit_task(
            make_spec(
                spatial_density=1,
                sampling_period_s=600.0,
                sampling_duration_s=3600.0,
            ),
            data.append,
        )
        sim.run(until=700.0)
        snapshot = checkpoint_server(server)
        server.shutdown()

        from repro.cellular.enodeb import ENodeB, TowerRegistry
        from repro.core.server import SenseAidServer
        from tests.test_core_server import CENTER

        fresh = SenseAidServer(
            sim,
            TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)]),
            network,
        )
        resumed = restore_server(
            fresh, snapshot, data_callbacks={"cas": data.append}
        )
        assert resumed == 1
        restored = fresh.devices.record("d0")
        assert restored.imei_hash == devices[0].imei_hash
        assert restored.times_selected == server.devices.record("d0").times_selected

    def test_restore_skips_expired_tasks(self):
        sim = Simulator()
        server, network, _, _ = make_setup(sim, n_devices=1)
        server.submit_task(
            make_spec(spatial_density=1, sampling_duration_s=600.0), lambda p: None
        )
        snapshot = checkpoint_server(server)
        sim.run(until=1000.0)  # past the task's end
        from repro.cellular.enodeb import ENodeB, TowerRegistry
        from repro.core.server import SenseAidServer
        from tests.test_core_server import CENTER

        fresh = SenseAidServer(
            sim,
            TowerRegistry([ENodeB("t1", CENTER, coverage_radius_m=5000.0)]),
            network,
        )
        assert restore_server(fresh, snapshot, {"cas": lambda p: None}) == 0


class TestHeatmap:
    SAMPLES = [
        SpatialSample(Point(100.0, 100.0), 1010.0),
        SpatialSample(Point(900.0, 900.0), 1020.0),
    ]

    def test_idw_at_sample_point(self):
        value = idw_interpolate(self.SAMPLES, Point(100.0, 100.0))
        assert value == pytest.approx(1010.0, abs=0.1)

    def test_idw_between_samples(self):
        value = idw_interpolate(self.SAMPLES, Point(500.0, 500.0))
        assert 1010.0 < value < 1020.0

    def test_idw_requires_samples(self):
        with pytest.raises(ValueError):
            idw_interpolate([], Point(0, 0))

    def test_grid_shape(self):
        grid = grid_field(self.SAMPLES, 1000.0, 1000.0, cols=10, rows=5)
        assert len(grid) == 5
        assert all(len(row) == 10 for row in grid)

    def test_grid_orientation_top_row_is_north(self):
        grid = grid_field(self.SAMPLES, 1000.0, 1000.0, cols=10, rows=5)
        # High-value sample sits at (900, 900): top-right corner.
        assert grid[0][-1] > grid[-1][0]

    def test_render_contains_ramp_extremes(self):
        art = render_heatmap(self.SAMPLES, 1000.0, 1000.0, title="map")
        assert art.splitlines()[0] == "map"
        assert "@" in art
        assert "low" in art and "high" in art

    def test_render_flat_field(self):
        flat = [SpatialSample(Point(500.0, 500.0), 1013.0)]
        art = render_heatmap(flat, 1000.0, 1000.0)
        assert "low 1013.0" in art

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            grid_field(self.SAMPLES, 1000.0, 1000.0, cols=0)
