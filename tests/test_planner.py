"""Tests for the campaign cost estimator, including validation against
full simulation."""

from __future__ import annotations

import pytest

from repro.cellular.power import LTE_POWER_PROFILE
from repro.core.config import ServerMode
from repro.core.tasks import TaskSpec
from repro.devices.sensors import SensorType
from repro.devices.traffic import TrafficPattern
from repro.environment.geometry import Point
from repro.serverlib.planner import (
    estimate_campaign,
    tail_hit_probability,
    upload_cost_j,
)


def make_task(**kwargs):
    defaults = dict(
        sensor_type=SensorType.BAROMETER,
        center=Point(1275.0, 1350.0),
        area_radius_m=1000.0,
        spatial_density=2,
        sampling_period_s=600.0,
        sampling_duration_s=5400.0,
    )
    defaults.update(kwargs)
    return TaskSpec(**defaults)


class TestTailHitProbability:
    def test_zero_window(self):
        assert tail_hit_probability(0.0, TrafficPattern()) == 0.0

    def test_monotone_in_window(self):
        pattern = TrafficPattern(mean_gap_s=420.0)
        p1 = tail_hit_probability(60.0, pattern)
        p2 = tail_hit_probability(600.0, pattern)
        assert 0.0 < p1 < p2 < 1.0

    def test_heavier_traffic_raises_probability(self):
        light = tail_hit_probability(300.0, TrafficPattern(mean_gap_s=1200.0))
        heavy = tail_hit_probability(300.0, TrafficPattern(mean_gap_s=240.0))
        assert heavy > light

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            tail_hit_probability(-1.0, TrafficPattern())


class TestUploadCost:
    def test_miss_is_cold_upload(self):
        cost = upload_cost_j(LTE_POWER_PROFILE, ServerMode.COMPLETE, hit=False)
        assert cost == pytest.approx(LTE_POWER_PROFILE.cold_upload_energy_j(600))

    def test_complete_hit_is_nearly_free(self):
        cost = upload_cost_j(LTE_POWER_PROFILE, ServerMode.COMPLETE, hit=True)
        assert cost < 0.1

    def test_basic_hit_costs_more_than_complete(self):
        basic = upload_cost_j(LTE_POWER_PROFILE, ServerMode.BASIC, hit=True)
        complete = upload_cost_j(LTE_POWER_PROFILE, ServerMode.COMPLETE, hit=True)
        assert basic > complete

    def test_hit_always_cheaper_than_miss(self):
        for mode in ServerMode:
            hit = upload_cost_j(LTE_POWER_PROFILE, mode, hit=True)
            miss = upload_cost_j(LTE_POWER_PROFILE, mode, hit=False)
            assert hit < miss


class TestEstimate:
    def test_shape(self):
        estimate = estimate_campaign(
            make_task(), LTE_POWER_PROFILE, TrafficPattern(mean_gap_s=420.0)
        )
        assert estimate.requests == 9
        assert estimate.devices_per_request == 2
        assert 0.0 < estimate.tail_hit_probability < 1.0
        assert estimate.fleet_energy_j == pytest.approx(
            estimate.energy_per_upload_j * 18
        )

    def test_budget_check(self):
        estimate = estimate_campaign(
            make_task(), LTE_POWER_PROFILE, TrafficPattern(mean_gap_s=420.0)
        )
        assert estimate.within_budget(496.0, qualified_pool=12)
        assert not estimate.within_budget(0.5, qualified_pool=12)
        with pytest.raises(ValueError):
            estimate.within_budget(496.0, qualified_pool=0)

    def test_estimate_matches_simulation_within_factor_two(self):
        """The whole point: the analytic estimate must predict the
        simulated fleet energy to within a small factor."""
        from repro.core.config import ServerMode
        from repro.experiments.common import (
            ScenarioConfig,
            TaskParams,
            run_sense_aid_arm,
        )

        simulated = []
        for seed in (7, 8, 9, 10):
            arm = run_sense_aid_arm(
                ScenarioConfig(seed=seed),
                [
                    TaskParams(
                        area_radius_m=1000.0,
                        spatial_density=2,
                        sampling_period_s=600.0,
                        sampling_duration_s=5400.0,
                    )
                ],
                ServerMode.COMPLETE,
            )
            simulated.append(arm.energy.total_j)
        mean_simulated = sum(simulated) / len(simulated)
        estimate = estimate_campaign(
            make_task(), LTE_POWER_PROFILE, TrafficPattern(mean_gap_s=420.0)
        )
        ratio = estimate.fleet_energy_j / mean_simulated
        assert 0.5 <= ratio <= 2.0

    def test_faster_sampling_costs_more(self):
        pattern = TrafficPattern(mean_gap_s=420.0)
        fast = estimate_campaign(
            make_task(sampling_period_s=60.0), LTE_POWER_PROFILE, pattern
        )
        slow = estimate_campaign(
            make_task(sampling_period_s=600.0), LTE_POWER_PROFILE, pattern
        )
        assert fast.fleet_energy_j > slow.fleet_energy_j
