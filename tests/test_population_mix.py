"""Tests for heterogeneous traffic mixes in the population."""

from __future__ import annotations

import pytest

from repro.devices.traffic import HEAVY_USER, LIGHT_USER, TrafficPattern
from repro.environment.campus import default_campus
from repro.environment.population import PopulationConfig, build_population
from repro.sim.engine import Simulator


class TestPatternFor:
    def test_homogeneous_by_default(self):
        config = PopulationConfig(size=10)
        assert all(config.pattern_for(i) is config.traffic for i in range(10))

    def test_striping(self):
        config = PopulationConfig(
            size=10, heavy_user_fraction=0.2, light_user_fraction=0.3
        )
        patterns = [config.pattern_for(i) for i in range(10)]
        assert patterns[0] is HEAVY_USER
        assert patterns[1] is HEAVY_USER
        assert patterns[2] is config.traffic
        assert patterns[6] is config.traffic
        assert patterns[7] is LIGHT_USER
        assert patterns[9] is LIGHT_USER

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            PopulationConfig(heavy_user_fraction=0.7, light_user_fraction=0.5)
        with pytest.raises(ValueError):
            PopulationConfig(heavy_user_fraction=-0.1)


class TestMixedPopulationBehaviour:
    def test_heavy_users_generate_more_sessions(self):
        sim = Simulator(seed=5)
        config = PopulationConfig(
            size=12,
            heavy_user_fraction=0.25,
            light_user_fraction=0.25,
            traffic=TrafficPattern(mean_gap_s=480.0),
        )
        devices = build_population(sim, default_campus(), config)
        sim.run(until=6 * 3600.0)
        heavy = sum(d.traffic.sessions for d in devices[:3])
        light = sum(d.traffic.sessions for d in devices[-3:])
        assert heavy > 2 * light

    def test_mix_is_deterministic(self):
        config = PopulationConfig(size=8, heavy_user_fraction=0.5)
        campus = default_campus()
        a = build_population(Simulator(seed=2), campus, config, start_traffic=False)
        b = build_population(Simulator(seed=2), campus, config, start_traffic=False)
        for da, db in zip(a, b):
            assert da.traffic._pattern is db.traffic._pattern
