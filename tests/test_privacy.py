"""Tests for the server-side privacy filter."""

from __future__ import annotations

import pytest

from repro.core.privacy import (
    PrivacyFilter,
    PrivacyPolicy,
    SENSITIVE_FIELDS,
    generalize_location,
    scrub_payload,
)
from repro.core.server import SensedDataPoint
from repro.devices.sensors import SensorType
from repro.sim.engine import Simulator
from tests.test_core_server import make_setup, make_spec


def make_point(request_id="r0", device_hash="hash-a", value=1013.0):
    return SensedDataPoint(
        request_id=request_id,
        task_id=1,
        sensor_type=SensorType.BAROMETER,
        value=value,
        sensed_at=10.0,
        delivered_at=11.0,
        device_hash=device_hash,
    )


class TestScrubbing:
    def test_sensitive_fields_removed(self):
        payload = {
            "device_id": "d0",
            "imei": "1234",
            "battery_pct": 80.0,
            "energy_used_j": 5.0,
            "value": 1013.0,
            "sensed_at": 9.0,
        }
        scrubbed = scrub_payload(payload)
        assert scrubbed == {"value": 1013.0, "sensed_at": 9.0}
        for sensitive_field in SENSITIVE_FIELDS:
            assert sensitive_field not in scrubbed

    def test_original_untouched(self):
        payload = {"device_id": "d0", "value": 1.0}
        scrub_payload(payload)
        assert "device_id" in payload

    def test_generalize_location(self):
        assert generalize_location("enb-00") == "cell:enb-00"


class TestPseudonyms:
    def test_stable_within_application(self):
        filt = PrivacyFilter(PrivacyPolicy())
        assert filt.pseudonym("h", "weather") == filt.pseudonym("h", "weather")

    def test_unlinkable_across_applications(self):
        filt = PrivacyFilter(PrivacyPolicy())
        assert filt.pseudonym("h", "weather") != filt.pseudonym("h", "traffic")

    def test_salt_changes_pseudonyms(self):
        a = PrivacyFilter(PrivacyPolicy(pseudonym_salt="s1"))
        b = PrivacyFilter(PrivacyPolicy(pseudonym_salt="s2"))
        assert a.pseudonym("h", "app") != b.pseudonym("h", "app")

    def test_pseudonym_hides_device_hash(self):
        filt = PrivacyFilter(PrivacyPolicy())
        delivered = []
        filt.offer(make_point(device_hash="raw-hash"), "app", delivered.append)
        assert delivered[0].device_hash != "raw-hash"


class TestKAnonymity:
    def test_k1_releases_immediately(self):
        filt = PrivacyFilter(PrivacyPolicy(k_anonymity=1))
        delivered = []
        filt.offer(make_point(), "app", delivered.append)
        assert len(delivered) == 1
        assert filt.released == 1

    def test_k2_buffers_first_reading(self):
        filt = PrivacyFilter(PrivacyPolicy(k_anonymity=2))
        delivered = []
        filt.offer(make_point(device_hash="a"), "app", delivered.append)
        assert delivered == []
        assert filt.pending("r0") == 1
        filt.offer(make_point(device_hash="b"), "app", delivered.append)
        assert len(delivered) == 2
        assert filt.pending("r0") == 0

    def test_duplicate_device_does_not_meet_bar(self):
        filt = PrivacyFilter(PrivacyPolicy(k_anonymity=2))
        delivered = []
        filt.offer(make_point(device_hash="a", value=1.0), "app", delivered.append)
        filt.offer(make_point(device_hash="a", value=2.0), "app", delivered.append)
        assert delivered == []

    def test_close_request_suppresses(self):
        filt = PrivacyFilter(PrivacyPolicy(k_anonymity=3))
        delivered = []
        filt.offer(make_point(device_hash="a"), "app", delivered.append)
        dropped = filt.close_request("r0")
        assert dropped == 1
        assert filt.suppressed == 1
        assert delivered == []

    def test_requests_independent(self):
        filt = PrivacyFilter(PrivacyPolicy(k_anonymity=2))
        delivered = []
        filt.offer(
            make_point(request_id="r1", device_hash="a"), "app", delivered.append
        )
        filt.offer(
            make_point(request_id="r2", device_hash="b"), "app", delivered.append
        )
        assert delivered == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            PrivacyPolicy(k_anonymity=0)


class TestServerIntegration:
    def _run(self, k):
        sim = Simulator()
        from repro.cellular.enodeb import ENodeB, TowerRegistry
        from repro.cellular.network import CellularNetwork
        from repro.clientlib.client import SenseAidClient
        from repro.core.config import SenseAidConfig, ServerMode
        from repro.core.server import SenseAidServer
        from tests.conftest import make_device
        from tests.test_core_server import CENTER

        registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)])
        network = CellularNetwork(sim)
        server = SenseAidServer(
            sim,
            registry,
            network,
            SenseAidConfig(mode=ServerMode.COMPLETE),
            privacy_policy=PrivacyPolicy(k_anonymity=k),
        )
        for i in range(3):
            SenseAidClient(
                sim, make_device(sim, f"d{i}", position=CENTER), server, network
            ).register()
        data = []
        server.submit_task(
            make_spec(spatial_density=2, sampling_duration_s=600.0), data.append
        )
        sim.run(until=650.0)
        return server, data

    def test_k2_satisfied_by_density2(self):
        server, data = self._run(k=2)
        assert len(data) == 2
        raw_hashes = {r.imei_hash for r in server.devices.records()}
        for point in data:
            assert point.device_hash not in raw_hashes

    def test_k3_suppresses_density2_request(self):
        server, data = self._run(k=3)
        assert data == []
        assert server.privacy.suppressed == 2
