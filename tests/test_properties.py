"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.fairness import ideal_spread, jain_index
from repro.cellular.packets import TrafficCategory
from repro.cellular.power import LTE_POWER_PROFILE
from repro.cellular.rrc import RadioModem, TailPolicy
from repro.core.config import SelectorWeights
from repro.core.selector import DeviceSelector
from repro.core.tasks import TaskSpec
from repro.devices.battery import Battery
from repro.devices.sensors import SensorType
from repro.environment.campus import default_campus
from repro.environment.geometry import Point
from repro.environment.mobility import RandomWaypointMobility
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue
from tests.test_core_datastores_queues import make_record

# ----------------------------------------------------------------------
# Event queue
# ----------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=50))
def test_event_queue_pops_sorted(times):
    queue = EventQueue()
    for t in times:
        queue.push(t, lambda: None)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=30),
    st.data(),
)
def test_event_queue_cancellation_preserves_rest(times, data):
    queue = EventQueue()
    events = [queue.push(t, lambda: None) for t in times]
    to_cancel = data.draw(
        st.sets(
            st.integers(min_value=0, max_value=len(events) - 1), max_size=len(events)
        )
    )
    for index in to_cancel:
        events[index].cancel()
        queue.note_cancelled()
    surviving_times = sorted(
        t for i, t in enumerate(times) if i not in to_cancel
    )
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == surviving_times


# ----------------------------------------------------------------------
# RRC state machine
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=60.0),  # inter-transfer gap
            st.integers(min_value=1, max_value=1_000_000),  # size
            st.sampled_from(list(TrafficCategory)),
        ),
        min_size=1,
        max_size=20,
    ),
    st.sampled_from(list(TailPolicy)),
)
def test_rrc_invariants_under_arbitrary_traffic(transfers, policy):
    """For any transfer schedule: charges are non-negative, residency
    sums to elapsed time, and total energy bounds the marginal sum."""
    sim = Simulator(seed=0)
    modem = RadioModem(sim, LTE_POWER_PROFILE, "m", policy)
    charges = []
    modem.add_energy_listener(lambda cat, j, r: charges.append(j))
    t = 0.0
    for gap, size, category in transfers:
        t += gap
        sim.schedule_at(t, modem.transmit, size, category)
    horizon = t + 100.0
    sim.run(until=horizon)
    assert all(j >= 0.0 for j in charges)
    residency = modem.state_residency()
    assert abs(sum(residency.values()) - horizon) < 1e-6
    assert modem.total_energy_j() >= sum(charges) - 1e-9
    assert modem.transfers == len(transfers)


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=0.1, max_value=11.4))
def test_no_reset_upload_never_extends_connection(offset_into_tail):
    """Complete-mode invariant: an in-tail upload leaves the radio's
    return-to-idle time unchanged."""
    profile = LTE_POWER_PROFILE

    def idle_time(with_upload):
        sim = Simulator(seed=0)
        modem = RadioModem(sim, profile, "m", TailPolicy.NO_RESET)
        idle_at = []
        modem.add_state_listener(
            lambda old, new: idle_at.append(sim.now) if new.value == "idle" else None
        )
        modem.transmit(600, TrafficCategory.BACKGROUND)
        tail_start = profile.promotion_s + profile.transfer_time(600)
        if with_upload:
            sim.schedule_at(
                tail_start + offset_into_tail,
                modem.transmit,
                600,
                TrafficCategory.CROWDSENSING,
            )
        sim.run(until=100.0)
        return idle_at[-1]

    # The upload may only delay idling by at most its own transfer time
    # (when it straddles the original deadline), never by a new tail.
    delta = idle_time(True) - idle_time(False)
    assert -1e-9 <= delta <= profile.transfer_time(600) + 1e-9


# ----------------------------------------------------------------------
# Selector
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=496.0),  # energy used
            st.integers(min_value=0, max_value=20),  # times selected
            st.floats(min_value=21.0, max_value=100.0),  # battery
        ),
        min_size=1,
        max_size=15,
    ),
    st.integers(min_value=1, max_value=15),
)
def test_selector_returns_lowest_scores(records_data, n):
    selector = DeviceSelector(SelectorWeights())
    records = [
        make_record(f"d{i:02d}", energy_used_j=e, times_selected=u, battery_pct=b)
        for i, (e, u, b) in enumerate(records_data)
    ]
    eligible = [r for r in records if not r.over_budget()]
    selected = selector.select(records, n, now=0.0)
    if n > len(eligible):
        assert selected is None
        return
    assert selected is not None
    assert len(selected) == n
    scores = {r.device_id: selector.score(r, 0.0) for r in eligible}
    worst_selected = max(scores[d] for d in selected)
    unselected = [scores[r.device_id] for r in eligible if r.device_id not in selected]
    assert all(worst_selected <= s + 1e-9 for s in unselected)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=20),  # pool size
    st.integers(min_value=1, max_value=60),  # rounds
    st.integers(min_value=1, max_value=2),  # picks per round
)
def test_selector_rotation_is_maximally_fair(pool, rounds, picks):
    """With beta-dominant weights, repeated selection over a static
    pool achieves the ideal min/max spread."""
    if picks > pool:
        picks = pool
    selector = DeviceSelector(SelectorWeights())
    records = [make_record(f"d{i:03d}") for i in range(pool)]
    counts = {r.device_id: 0 for r in records}
    for _ in range(rounds):
        selected = selector.select(records, picks, now=0.0)
        for device_id in selected:
            counts[device_id] += 1
            next(r for r in records if r.device_id == device_id).times_selected += 1
    lo, hi = ideal_spread(rounds * picks, pool)
    assert min(counts.values()) == lo
    assert max(counts.values()) == hi


# ----------------------------------------------------------------------
# Fairness metrics
# ----------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_jain_index_bounds(counts):
    value = jain_index(counts)
    assert 0.0 < value <= 1.0 + 1e-9


@given(
    st.floats(min_value=0.001, max_value=1e6),
    st.integers(min_value=1, max_value=100),
)
def test_jain_equal_allocation_is_one(amount, n):
    assert jain_index([amount] * n) > 0.9999


# ----------------------------------------------------------------------
# Battery
# ----------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=5000.0), max_size=30))
def test_battery_never_negative_and_accounting_exact(drains):
    battery = Battery()
    for amount in drains:
        battery.drain(amount)
    assert battery.remaining_j >= 0.0
    assert 0.0 <= battery.level_pct <= 100.0
    assert battery.drained_j >= sum(drains) - 1e-6


# ----------------------------------------------------------------------
# Task expansion
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=10.0, max_value=3600.0),  # period
    st.floats(min_value=10.0, max_value=86400.0),  # duration
    st.floats(min_value=0.0, max_value=1e5),  # now
)
def test_request_expansion_invariants(period, duration, now):
    task = TaskSpec(
        sensor_type=SensorType.BAROMETER,
        center=Point(0.0, 0.0),
        area_radius_m=100.0,
        spatial_density=1,
        sampling_period_s=period,
        sampling_duration_s=duration,
    )
    requests = task.expand_requests(now)
    assert len(requests) == max(1, int(duration // period))
    for request in requests:
        assert request.issue_time >= now
        assert request.deadline > request.issue_time
    issues = [r.issue_time for r in requests]
    assert issues == sorted(issues)
    # Consecutive requests are exactly one period apart.
    for a, b in zip(issues, issues[1:]):
        assert abs((b - a) - period) < 1e-6


# ----------------------------------------------------------------------
# Mobility
# ----------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_mobility_stays_on_campus_and_is_continuous(query_time, seed):
    campus = default_campus()
    mobility = RandomWaypointMobility(
        campus.site("CS department").position,
        campus.all_waypoints(),
        random.Random(seed),
    )
    p1 = mobility.position_at(float(query_time))
    p2 = mobility.position_at(float(query_time) + 1.0)
    assert campus.contains(p1)
    assert p1.distance_to(p2) <= mobility.speed_mps + 1e-6
