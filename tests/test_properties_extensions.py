"""Property-based tests for the extension modules."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.heatmap import SpatialSample, idw_interpolate
from repro.analysis.truth import discover_truth
from repro.cellular.power import THREEG_POWER_PROFILE
from repro.core.privacy import PrivacyFilter, PrivacyPolicy
from repro.core.server import SensedDataPoint
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point

# ----------------------------------------------------------------------
# Privacy filter
# ----------------------------------------------------------------------


def _point(request_id, device_hash, value=1013.0):
    return SensedDataPoint(
        request_id=request_id,
        task_id=1,
        sensor_type=SensorType.BAROMETER,
        value=value,
        sensed_at=0.0,
        delivered_at=1.0,
        device_hash=device_hash,
    )


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),  # k
    st.lists(
        st.tuples(
            st.sampled_from(["r1", "r2", "r3"]),
            st.sampled_from(["a", "b", "c", "d", "e"]),
        ),
        max_size=30,
    ),
)
def test_k_anonymity_never_violated(k, offers):
    """No reading is ever released for a request before k distinct
    devices have contributed to it, and closing suppresses the rest."""
    filt = PrivacyFilter(PrivacyPolicy(k_anonymity=k))
    released = []
    contributors = {}
    for request_id, device in offers:
        contributors.setdefault(request_id, set()).add(device)
        filt.offer(
            _point(request_id, device),
            "app",
            lambda p: released.append(p),
        )
        for point in released:
            assert len(contributors[point.request_id]) >= k
    # Conservation: everything offered is either released or, after
    # closing, suppressed.
    for request_id in ("r1", "r2", "r3"):
        filt.close_request(request_id)
    assert filt.released + filt.suppressed == len(offers)


@settings(max_examples=30, deadline=None)
@given(st.text(min_size=1, max_size=20), st.text(min_size=1, max_size=10))
def test_pseudonyms_deterministic_and_opaque(device_hash, application):
    filt = PrivacyFilter(PrivacyPolicy())
    p1 = filt.pseudonym(device_hash, application)
    p2 = filt.pseudonym(device_hash, application)
    assert p1 == p2
    assert len(p1) == 16
    if len(device_hash) >= 8:
        assert device_hash not in p1


# ----------------------------------------------------------------------
# IDW interpolation
# ----------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1000.0),
            st.floats(min_value=0.0, max_value=1000.0),
            st.floats(min_value=900.0, max_value=1100.0),
        ),
        min_size=1,
        max_size=10,
    ),
    st.floats(min_value=0.0, max_value=1000.0),
    st.floats(min_value=0.0, max_value=1000.0),
)
def test_idw_bounded_by_sample_range(samples_data, qx, qy):
    """An IDW estimate can never leave the samples' value range."""
    samples = [SpatialSample(Point(x, y), v) for x, y, v in samples_data]
    value = idw_interpolate(samples, Point(qx, qy))
    values = [s.value for s in samples]
    assert min(values) - 1e-9 <= value <= max(values) + 1e-9


# ----------------------------------------------------------------------
# Truth discovery
# ----------------------------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(
        keys=st.sampled_from(["s1", "s2", "s3", "s4"]),
        values=st.dictionaries(
            keys=st.sampled_from(["i1", "i2", "i3"]),
            values=st.floats(min_value=-1000.0, max_value=1000.0),
            min_size=1,
            max_size=3,
        ),
        min_size=1,
        max_size=4,
    )
)
def test_truth_discovery_invariants(claims):
    result = discover_truth(claims)
    # Weights are positive; truths stay inside the claimed range per item.
    assert all(w > 0 for w in result.weights.values())
    for item, truth in result.truths.items():
        claimed = [c[item] for c in claims.values() if item in c]
        assert min(claimed) - 1e-6 <= truth <= max(claimed) + 1e-6


# ----------------------------------------------------------------------
# Persistence codecs
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1000.0),   # energy used
    st.integers(min_value=0, max_value=50),       # times selected
    st.floats(min_value=0.0, max_value=100.0),    # battery
    st.one_of(st.none(), st.floats(min_value=0.0, max_value=1e6)),  # last comm
    st.booleans(),                                # responsive
    st.floats(min_value=0.0, max_value=1.0),      # reliability
)
def test_device_record_round_trip(
    energy, selected, battery, last_comm, responsive, reliability
):
    import json

    from repro.core.persistence import record_from_dict, record_to_dict
    from tests.test_core_datastores_queues import make_record

    record = make_record(
        energy_used_j=energy,
        times_selected=selected,
        battery_pct=battery,
        last_comm_time=last_comm,
        responsive=responsive,
        reliability=reliability,
        sensors=frozenset({SensorType.BAROMETER, SensorType.GPS}),
    )
    encoded = json.dumps(record_to_dict(record))
    restored = record_from_dict(json.loads(encoded))
    assert restored == record


# ----------------------------------------------------------------------
# Staged tail energy
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=-2.0, max_value=12.0),
    st.floats(min_value=-2.0, max_value=12.0),
)
def test_tail_energy_between_monotone_and_additive(a, b):
    p = THREEG_POWER_PROFILE
    lo, hi = min(a, b), max(a, b)
    energy = p.tail_energy_between(lo, hi)
    assert energy >= 0.0
    mid = (lo + hi) / 2.0
    split = p.tail_energy_between(lo, mid) + p.tail_energy_between(mid, hi)
    assert energy == __import__("pytest").approx(split)
    assert energy <= p.tail_energy_j() + 1e-9
