"""Property-based end-to-end invariants of the Sense-Aid server.

Each example builds a random small scenario (devices, positions,
density, period) and runs a full campaign, then checks the invariants
that must hold for *any* workload.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.cellular.packets import TrafficCategory
from repro.clientlib.client import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.core.tasks import TaskSpec
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point
from repro.sim.engine import Simulator
from tests.conftest import make_device

CENTER = Point(500.0, 500.0)

scenario_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "n_devices": st.integers(min_value=1, max_value=8),
        "density": st.integers(min_value=1, max_value=4),
        "period_s": st.sampled_from([120.0, 300.0, 600.0]),
        "ticks": st.integers(min_value=1, max_value=4),
        "mode": st.sampled_from(list(ServerMode)),
        "spread_m": st.floats(min_value=0.0, max_value=1500.0),
        "with_traffic": st.booleans(),
    }
)


def run_scenario(params):
    sim = Simulator(seed=params["seed"])
    registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=10_000.0)])
    network = CellularNetwork(sim)
    server = SenseAidServer(
        sim, registry, network, SenseAidConfig(mode=params["mode"])
    )
    rng = sim.rng.stream("scenario")
    devices, clients = [], []
    for i in range(params["n_devices"]):
        offset = params["spread_m"] * rng.random()
        angle = rng.random() * 6.283185
        import math

        position = Point(
            CENTER.x + offset * math.cos(angle),
            CENTER.y + offset * math.sin(angle),
        )
        device = make_device(sim, f"d{i}", position=position)
        client = SenseAidClient(sim, device, server, network)
        client.register()
        if params["with_traffic"]:
            device.traffic.start()
        devices.append(device)
        clients.append(client)
    duration = params["period_s"] * params["ticks"]
    task = TaskSpec(
        sensor_type=SensorType.BAROMETER,
        center=CENTER,
        area_radius_m=1000.0,
        spatial_density=params["density"],
        sampling_period_s=params["period_s"],
        sampling_duration_s=duration,
    )
    data = []
    server.submit_task(task, data.append)
    sim.run(until=duration + 60.0)
    server.shutdown()
    return server, devices, clients, data


@settings(max_examples=40, deadline=None)
@given(scenario_strategy)
def test_server_invariants(params):
    server, devices, clients, data = run_scenario(params)
    stats = server.stats

    # Request accounting balances.
    assert stats.requests_issued == params["ticks"]
    assert (
        stats.requests_scheduled + stats.requests_waitlisted
        >= stats.requests_issued
        - stats.requests_expired
        - stats.requests_lost_to_crash
    )

    # Every selection event picked exactly the density, only from
    # qualified devices, with no duplicates.
    for event in server.selection_log:
        assert len(event.selected) == params["density"]
        assert len(set(event.selected)) == len(event.selected)
        assert set(event.selected) <= set(event.qualified)

    # Data only from assigned devices; never more points than
    # assignments.
    assert stats.data_points <= stats.assignments

    # Energy sanity: every delivered point cost something, nothing is
    # negative, and the battery drained exactly what the ledger charged.
    for device in devices:
        assert device.crowdsensing_energy_j() >= 0.0
        ledger_total = device.ledger.grand_total_j()
        assert device.battery.drained_j >= ledger_total - 1e-6
    if stats.data_points:
        assert sum(d.crowdsensing_energy_j() for d in devices) > 0.0

    # Application data points carry plausible values and hashed ids.
    raw_ids = {d.device_id for d in devices}
    for point in data:
        assert 850.0 <= point.value <= 1100.0
        assert point.device_hash not in raw_ids


@settings(max_examples=15, deadline=None)
@given(scenario_strategy)
def test_scenario_determinism(params):
    first = run_scenario(params)
    second = run_scenario(params)
    assert first[0].stats == second[0].stats
    assert [d.crowdsensing_energy_j() for d in first[1]] == [
        d.crowdsensing_energy_j() for d in second[1]
    ]


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=2, max_value=6),
)
def test_complete_never_costs_more_than_basic(seed, n_devices):
    """For any world, Complete's only difference is not resetting the
    tail — it can never use more crowdsensing energy than Basic."""

    def total(mode):
        params = {
            "seed": seed,
            "n_devices": n_devices,
            "density": min(2, n_devices),
            "period_s": 300.0,
            "ticks": 3,
            "mode": mode,
            "spread_m": 200.0,
            "with_traffic": True,
        }
        _, devices, _, _ = run_scenario(params)
        return sum(d.crowdsensing_energy_j() for d in devices)

    assert total(ServerMode.COMPLETE) <= total(ServerMode.BASIC) + 1e-6
