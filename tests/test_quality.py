"""Tests for data-quality metrics — the paper's "not harming
crowdsensing data" prerequisite."""

from __future__ import annotations

import pytest

from repro.analysis.quality import (
    LatencyStats,
    QualityReport,
    baseline_quality,
    delivery_latency,
    sense_aid_quality,
)
from repro.core.config import ServerMode
from repro.experiments.common import (
    ScenarioConfig,
    TaskParams,
    run_pcs_arm,
    run_periodic_arm,
    run_sense_aid_arm,
)

CONFIG = ScenarioConfig(seed=7)
TASKS = [
    TaskParams(
        area_radius_m=1000.0,
        spatial_density=2,
        sampling_period_s=600.0,
        sampling_duration_s=3600.0,
    )
]


@pytest.fixture(scope="module")
def arms():
    return {
        "sense_aid": run_sense_aid_arm(CONFIG, TASKS, ServerMode.COMPLETE),
        "periodic": run_periodic_arm(CONFIG, TASKS),
        "pcs": run_pcs_arm(CONFIG, TASKS),
    }


class TestQualityReport:
    def test_completeness_math(self):
        report = QualityReport(requests_total=10, requests_satisfied=9, data_points=20)
        assert report.completeness == 0.9

    def test_empty_campaign_is_complete(self):
        assert QualityReport(0, 0, 0).completeness == 1.0


class TestFrameworkQuality:
    def test_sense_aid_meets_density(self, arms):
        report = sense_aid_quality(arms["sense_aid"].extras["server"])
        assert report.requests_total == 6
        assert report.completeness >= 0.9

    def test_baselines_meet_density(self, arms):
        for name in ("periodic", "pcs"):
            report = baseline_quality(arms[name].extras["framework"])
            assert report.requests_total == 6
            assert report.completeness >= 0.9

    def test_energy_saving_does_not_harm_data(self, arms):
        """The paper's headline caveat, as an assertion: Sense-Aid's
        huge energy saving must come at equal data completeness."""
        sense_aid = sense_aid_quality(arms["sense_aid"].extras["server"])
        periodic = baseline_quality(arms["periodic"].extras["framework"])
        assert sense_aid.completeness >= periodic.completeness - 0.2
        assert (
            arms["sense_aid"].energy.total_j < 0.3 * arms["periodic"].energy.total_j
        )


class TestLatency:
    def test_latency_within_sampling_period(self, arms):
        cas = arms["sense_aid"].extras["cas"]
        stats = delivery_latency(cas.readings)
        assert stats.count == arms["sense_aid"].data_points
        # Every reading reached the application within its sampling
        # window (plus the deadline grace).
        assert stats.max_s <= 600.0 + 10.0
        assert stats.mean_s >= 0.0
        assert stats.p95_s <= stats.max_s

    def test_empty_latency(self):
        stats = delivery_latency([])
        assert stats == LatencyStats(0, 0.0, 0.0, 0.0)
