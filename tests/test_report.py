"""Tests for the combined reproduction report."""

from __future__ import annotations

import pytest

from repro.analysis.report import generate_report, write_report
from repro.cli import main


class TestGenerateReport:
    def test_subset_report_contains_sections(self):
        report = generate_report(experiments=["fig1", "fig6"])
        assert "Sense-Aid reproduction report" in report
        assert "[fig1]" in report
        assert "[fig6]" in report
        assert "Figure 1" in report
        assert "Figure 6" in report
        assert "scenario seed: 7" in report

    def test_seed_recorded(self):
        report = generate_report(seed=99, experiments=["fig1"])
        assert "scenario seed: 99" in report

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            generate_report(experiments=["fig99"])


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = str(tmp_path / "report.txt")
        returned = write_report(path, experiments=["fig1"])
        with open(path) as f:
            on_disk = f.read()
        assert on_disk == returned
        assert "[fig1]" in on_disk


class TestCliReport:
    def test_report_command(self, tmp_path, capsys):
        path = str(tmp_path / "r.txt")
        code = main(["report", "--output", path, "--experiments", "fig1"])
        assert code == 0
        out = capsys.readouterr().out
        assert path in out

    def test_report_command_unknown_experiment(self, tmp_path, capsys):
        path = str(tmp_path / "r.txt")
        code = main(["report", "--output", path, "--experiments", "fig99"])
        assert code == 2
