"""Tests for the robustness experiment and the bar-chart renderer."""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_bar_chart
from repro.experiments import robustness


class TestBarChart:
    def test_scales_to_peak(self):
        chart = format_bar_chart([("a", 100.0), ("b", 50.0)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_zero_value_gets_no_bar(self):
        chart = format_bar_chart([("a", 10.0), ("b", 0.0)], width=10)
        assert chart.splitlines()[1].count("#") == 0

    def test_tiny_value_still_visible(self):
        chart = format_bar_chart([("a", 1000.0), ("b", 0.1)], width=10)
        assert chart.splitlines()[1].count("#") == 1

    def test_title_and_values_present(self):
        chart = format_bar_chart([("x", 12.34)], title="T", value_format="{:.2f}")
        assert chart.splitlines()[0] == "T"
        assert "12.34" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            format_bar_chart([])
        with pytest.raises(ValueError):
            format_bar_chart([("a", 1.0)], width=0)


class TestRobustness:
    @pytest.fixture(scope="class")
    def stats(self):
        return robustness.run(seeds=(7, 8, 9))

    def test_all_comparisons_present(self, stats):
        assert {s.comparison for s in stats} == set(robustness.COMPARISONS)
        assert all(s.samples == 3 for s in stats)

    def test_savings_consistently_high(self, stats):
        """The representative-case conclusion holds in every world:
        Sense-Aid saves the large majority of energy."""
        for s in stats:
            assert s.min_pct > 70.0
            assert s.mean_pct > 85.0

    def test_spread_is_small(self, stats):
        for s in stats:
            assert s.max_pct - s.min_pct < 20.0
            assert s.std_pct < 10.0

    def test_complete_at_least_as_good_as_basic(self, stats):
        by_name = {s.comparison: s for s in stats}
        assert (
            by_name["complete_vs_pcs"].mean_pct
            >= by_name["basic_vs_pcs"].mean_pct
        )

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            robustness.run(seeds=())
