"""Tests for the parallel experiment engine (repro.runner)."""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.config import SelectorWeights
from repro.experiments.common import ScenarioConfig
from repro.runner import (
    CACHE_SCHEMA_VERSION,
    ExperimentEngine,
    PointFailure,
    ResultCache,
    canonical_json,
    canonicalize,
    config_hash,
    derive_seed,
)


# -- module-level point functions (worker processes pickle these) ------


def _square(x):
    return x * x


def _mix(x, y=1.0):
    return {"sum": x + y, "product": x * y, "tag": f"{x}:{y}"}


def _fail_on(x, bad):
    if x == bad:
        raise ValueError(f"poisoned point {x}")
    return x + 100


def _die_on(x, bad):
    if x == bad:
        os._exit(13)  # hard worker death, not a Python exception
    return x + 200


def _seed_of(config):
    return config.seed


class TestCanonicalization:
    def test_stable_across_calls(self):
        config = ScenarioConfig(seed=11)
        assert canonical_json(config) == canonical_json(ScenarioConfig(seed=11))

    def test_dataclasses_are_type_tagged(self):
        # Same field values in different dataclass types must not collide.
        assert config_hash(ScenarioConfig()) != config_hash(SelectorWeights())

    def test_field_change_changes_hash(self):
        assert config_hash(ScenarioConfig(seed=1)) != config_hash(
            ScenarioConfig(seed=2)
        )

    def test_tuple_and_list_canonicalize_alike(self):
        assert canonical_json([1, 2, 3]) == canonical_json((1, 2, 3))

    def test_dict_key_order_irrelevant(self):
        assert canonical_json({"a": 1, "b": 2}) == canonical_json({"b": 2, "a": 1})

    def test_non_string_dict_keys_rejected(self):
        with pytest.raises(TypeError):
            canonicalize({1: "x"})

    def test_unknown_types_rejected(self):
        with pytest.raises(TypeError):
            canonicalize(object())


class TestDeriveSeed:
    def test_deterministic(self):
        config = ScenarioConfig(seed=7)
        assert derive_seed(config, 0) == derive_seed(config, 0)

    def test_distinct_per_replication(self):
        config = ScenarioConfig(seed=7)
        seeds = {derive_seed(config, rep) for rep in range(64)}
        assert len(seeds) == 64

    def test_distinct_per_config(self):
        assert derive_seed(ScenarioConfig(seed=1), 0) != derive_seed(
            ScenarioConfig(seed=2), 0
        )

    def test_salt_separates_streams(self):
        config = ScenarioConfig()
        assert derive_seed(config, 0) != derive_seed(config, 0, salt="warmup")

    def test_positive_63_bit_range(self):
        config = ScenarioConfig()
        for rep in range(16):
            assert 0 <= derive_seed(config, rep) < 2**63


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        hit, _ = cache.get("k" * 64)
        assert not hit
        cache.put("k" * 64, {"value": 42})
        hit, value = cache.get("k" * 64)
        assert hit and value == {"value": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with open(cache.path_for("bad"), "wb") as f:
            f.write(b"not a pickle")
        hit, _ = cache.get("bad")
        assert not hit

    def test_cross_schema_entry_invalidated(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with open(cache.path_for("old"), "wb") as f:
            pickle.dump(
                {"schema": CACHE_SCHEMA_VERSION + 1, "key": "old", "payload": 1}, f
            )
        hit, _ = cache.get("old")
        assert not hit
        assert not os.path.exists(cache.path_for("old"))  # dropped, not shadowing

    def test_entry_in_wrong_slot_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("aaa", 1)
        os.rename(cache.path_for("aaa"), cache.path_for("bbb"))
        hit, _ = cache.get("bbb")
        assert not hit

    def test_clear_and_len(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("one", 1)
        cache.put("two", 2)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestResultCacheSpill:
    def test_large_payload_spills_to_object_store(self, tmp_path):
        cache = ResultCache(str(tmp_path), spill_threshold=1024)
        big = {"blob": list(range(5000))}
        cache.put("big", big)
        assert cache.spills == 1
        assert os.path.isdir(cache.objects_dir)
        assert len(os.listdir(cache.objects_dir)) == 1
        # The entry file itself stays tiny — only the digest ref.
        assert os.path.getsize(cache.path_for("big")) < 1024
        hit, value = cache.get("big")
        assert hit and value == big

    def test_small_payload_stays_inline(self, tmp_path):
        cache = ResultCache(str(tmp_path), spill_threshold=1024)
        cache.put("small", {"x": 1})
        assert cache.spills == 0
        assert not os.path.isdir(cache.objects_dir)

    def test_identical_artifacts_are_shared(self, tmp_path):
        cache = ResultCache(str(tmp_path), spill_threshold=64)
        payload = list(range(1000))
        cache.put("a", payload)
        cache.put("b", payload)
        assert len(os.listdir(cache.objects_dir)) == 1  # content-addressed
        assert cache.get("a") == (True, payload)
        assert cache.get("b") == (True, payload)

    def test_truncated_artifact_is_a_miss_not_a_hit(self, tmp_path):
        """A crash mid-artifact-write (or later corruption) must never
        come back as a cache hit — the digest check catches it."""
        cache = ResultCache(str(tmp_path), spill_threshold=64)
        cache.put("victim", list(range(1000)))
        (name,) = os.listdir(cache.objects_dir)
        path = os.path.join(cache.objects_dir, name)
        with open(path, "rb") as f:
            blob = f.read()
        with open(path, "wb") as f:
            f.write(blob[: len(blob) // 2])  # torn write
        hit, value = cache.get("victim")
        assert not hit and value is None
        # Both the bad artifact and the now-dangling entry are dropped.
        assert not os.path.exists(path)
        assert not os.path.exists(cache.path_for("victim"))

    def test_missing_artifact_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path), spill_threshold=64)
        cache.put("victim", list(range(1000)))
        (name,) = os.listdir(cache.objects_dir)
        os.unlink(os.path.join(cache.objects_dir, name))
        hit, _ = cache.get("victim")
        assert not hit

    def test_clear_removes_spilled_objects(self, tmp_path):
        cache = ResultCache(str(tmp_path), spill_threshold=64)
        cache.put("a", list(range(1000)))
        assert cache.clear() == 1
        assert os.listdir(cache.objects_dir) == []

    def test_invalid_threshold_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(str(tmp_path), spill_threshold=0)

    def test_engine_spill_threshold_passthrough(self, tmp_path):
        engine = ExperimentEngine(
            cache_dir=str(tmp_path), spill_threshold=128
        )
        assert engine.cache.spill_threshold == 128


class TestEngineSerial:
    def test_results_in_submission_order(self):
        engine = ExperimentEngine()
        values = engine.run_points(_square, [{"x": x} for x in (5, 3, 9, 1)])
        assert values == [25, 9, 81, 1]

    def test_failure_isolation(self):
        engine = ExperimentEngine()
        outcomes = engine.map(_fail_on, [{"x": x, "bad": 2} for x in range(4)])
        assert [o.ok for o in outcomes] == [True, True, False, True]
        assert "poisoned point 2" in outcomes[2].error
        assert [o.value for o in outcomes if o.ok] == [100, 101, 103]

    def test_run_points_raises_after_all_points_ran(self):
        engine = ExperimentEngine()
        with pytest.raises(PointFailure) as excinfo:
            engine.run_points(_fail_on, [{"x": x, "bad": 0} for x in range(3)])
        failure = excinfo.value
        assert len(failure.failed) == 1
        assert failure.failed[0].index == 0
        # The other points completed despite the failure.
        assert [o.value for o in failure.outcomes if o.ok] == [101, 102]

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ExperimentEngine(workers=0)


class TestEngineCache:
    def test_second_run_is_all_hits(self, tmp_path):
        engine = ExperimentEngine(cache_dir=str(tmp_path))
        first = engine.run_points(_mix, [{"x": float(x)} for x in range(4)])
        assert engine.stats.executed == 4
        second = engine.run_points(_mix, [{"x": float(x)} for x in range(4)])
        assert second == first
        assert engine.stats.cached == 4
        assert engine.stats.executed == 4  # nothing recomputed

    def test_changed_kwargs_miss(self, tmp_path):
        engine = ExperimentEngine(cache_dir=str(tmp_path))
        engine.run_points(_mix, [{"x": 1.0}])
        engine.run_points(_mix, [{"x": 1.0, "y": 2.0}])
        assert engine.stats.executed == 2

    def test_version_salt_invalidates(self, tmp_path):
        engine = ExperimentEngine(cache_dir=str(tmp_path))
        engine.run_points(_mix, [{"x": 1.0}], version="v1")
        engine.run_points(_mix, [{"x": 1.0}], version="v2")
        assert engine.stats.executed == 2

    def test_failures_never_cached(self, tmp_path):
        engine = ExperimentEngine(cache_dir=str(tmp_path))
        engine.map(_fail_on, [{"x": 0, "bad": 0}])
        assert len(engine.cache) == 0

    def test_keys_are_content_addressed(self, tmp_path):
        key_a = ExperimentEngine.task_key(_mix, {"x": 1.0})
        key_b = ExperimentEngine.task_key(_mix, {"x": 1.0})
        key_c = ExperimentEngine.task_key(_square, {"x": 1.0})
        assert key_a == key_b
        assert key_a != key_c  # different point function, different key


class TestEngineParallel:
    def test_parallel_matches_serial(self):
        tasks = [{"x": float(x), "y": float(x % 3)} for x in range(8)]
        serial = ExperimentEngine(workers=1).run_points(_mix, tasks)
        parallel = ExperimentEngine(workers=4).run_points(_mix, tasks)
        assert parallel == serial

    def test_exception_isolation_in_pool(self):
        engine = ExperimentEngine(workers=2)
        outcomes = engine.map(_fail_on, [{"x": x, "bad": 1} for x in range(4)])
        assert [o.ok for o in outcomes] == [True, False, True, True]
        assert "poisoned point 1" in outcomes[1].error

    def test_worker_death_is_isolated(self):
        # One point hard-kills its worker (os._exit): the pool is
        # rebuilt, the poisoned point fails after its retry budget, and
        # every other point still completes.
        engine = ExperimentEngine(workers=2, max_crash_retries=1)
        outcomes = engine.map(_die_on, [{"x": x, "bad": 2} for x in range(5)])
        by_index = {o.index: o for o in outcomes}
        assert not by_index[2].ok
        assert "worker process died" in by_index[2].error
        for index in (0, 1, 3, 4):
            assert by_index[index].ok, by_index[index].error
            assert by_index[index].value == index + 200
        assert engine.stats.pool_rebuilds >= 1

    def test_cache_shared_between_modes(self, tmp_path):
        tasks = [{"x": float(x)} for x in range(4)]
        serial = ExperimentEngine(workers=1, cache_dir=str(tmp_path))
        first = serial.run_points(_mix, tasks)
        parallel = ExperimentEngine(workers=4, cache_dir=str(tmp_path))
        second = parallel.run_points(_mix, tasks)
        assert second == first
        assert parallel.stats.cached == 4 and parallel.stats.executed == 0


class TestReplicate:
    def test_replications_get_derived_seeds(self):
        engine = ExperimentEngine()
        config = ScenarioConfig(seed=7)
        seeds = engine.replicate(_seed_of, config, 5)
        assert seeds == [derive_seed(config, rep) for rep in range(5)]
        assert len(set(seeds)) == 5

    def test_invalid_replications_rejected(self):
        with pytest.raises(ValueError):
            ExperimentEngine().replicate(_seed_of, ScenarioConfig(), 0)
