"""Parallel-equals-serial guarantees for real experiment sweeps.

The acceptance bar for the engine: a seeded sweep run with four
workers produces *byte-identical* merged artifacts to a serial run,
and per-replication metrics match exactly — no float drift, no
reordering, no seed coupling to worker identity.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import exp1_radius, robustness, weight_sweep
from repro.experiments.common import ScenarioConfig
from repro.runner import ExperimentEngine, derive_seed

RADII = (100.0, 300.0)


def _exp1_artifact(result) -> bytes:
    """The merged analysis artifact of an exp1 sweep, serialized."""
    return json.dumps(
        {
            "fig7": result.fig7_rows(),
            "fig8": result.fig8_rows(),
            "savings": [point.savings_row() for point in result.points],
            "fairness_counts": sorted(result.fairness_counts.items()),
            "fig9": [[t, list(sel)] for t, sel in result.fig9_matrix()],
        },
        sort_keys=True,
    ).encode("utf-8")


class TestSweepArtifactsBitIdentical:
    def test_exp1_four_workers_byte_identical_to_serial(self):
        config = ScenarioConfig(seed=7)
        serial = exp1_radius.run(config, radii_m=RADII)
        parallel = exp1_radius.run(
            config, radii_m=RADII, engine=ExperimentEngine(workers=4)
        )
        assert _exp1_artifact(parallel) == _exp1_artifact(serial)

    def test_robustness_per_replication_metrics_identical(self):
        seeds = (7, 8, 9, 10)
        serial_worlds = ExperimentEngine(workers=1).run_points(
            robustness._seed_savings, [{"seed": s} for s in seeds]
        )
        parallel_worlds = ExperimentEngine(workers=4).run_points(
            robustness._seed_savings, [{"seed": s} for s in seeds]
        )
        assert parallel_worlds == serial_worlds  # exact float equality, in order
        assert robustness.run(seeds) == robustness.run(
            seeds, engine=ExperimentEngine(workers=4)
        )

    def test_weight_sweep_identical_and_cache_replays(self, tmp_path):
        config = ScenarioConfig(seed=7)
        sweep = weight_sweep.DEFAULT_SWEEP[:2]
        serial = weight_sweep.run(config, sweep, worlds=2)
        engine = ExperimentEngine(workers=4, cache_dir=str(tmp_path))
        parallel = weight_sweep.run(config, sweep, worlds=2, engine=engine)
        assert parallel == serial
        # A rerun against the same cache recomputes nothing and still
        # merges the same result.
        replay_engine = ExperimentEngine(workers=4, cache_dir=str(tmp_path))
        replay = weight_sweep.run(config, sweep, worlds=2, engine=replay_engine)
        assert replay == serial
        assert replay_engine.stats.executed == 0
        assert replay_engine.stats.cached == len(sweep) * 2


def _metrics_for_seed(seed: int) -> dict:
    """A cheap deterministic stand-in for one replication's metrics."""
    value = float(seed % 1009)
    return {"seed": seed, "energy": value * 1.5 + 0.125, "points": seed % 17}


class TestParallelSerialProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        seeds=st.lists(
            st.integers(min_value=0, max_value=2**32), min_size=1, max_size=8
        )
    )
    def test_engine_order_and_values_match_for_any_task_list(self, seeds):
        tasks = [{"seed": seed} for seed in seeds]
        serial = ExperimentEngine(workers=1).run_points(_metrics_for_seed, tasks)
        parallel = ExperimentEngine(workers=4).run_points(_metrics_for_seed, tasks)
        assert parallel == serial

    @settings(max_examples=32, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31), rep=st.integers(0, 512))
    def test_derived_seed_depends_only_on_config_and_replication(self, seed, rep):
        config = ScenarioConfig(seed=seed)
        assert derive_seed(config, rep) == derive_seed(ScenarioConfig(seed=seed), rep)
