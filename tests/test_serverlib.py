"""Tests for the crowdsensing application-server library."""

from __future__ import annotations

import pytest

from repro.devices.sensors import SensorType
from repro.serverlib.appserver import CrowdsensingAppServer
from repro.sim.engine import Simulator
from tests.test_core_server import CENTER, make_setup


def make_cas(server, name="weather", on_data=None):
    return CrowdsensingAppServer(server, name, on_data=on_data)


def submit_default_task(cas, **kwargs):
    defaults = dict(
        sampling_period_s=600.0,
        sampling_duration_s=1800.0,
    )
    defaults.update(kwargs)
    return cas.task(SensorType.BAROMETER, CENTER, 1000.0, 2, **defaults)


class TestTaskApi:
    def test_task_submission_and_data_flow(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        cas = make_cas(server)
        task_id = submit_default_task(cas)
        assert task_id in cas.task_ids
        sim.run(until=1900.0)
        assert len(cas.readings) == 6  # 3 requests × density 2
        assert all(p.task_id == task_id for p in cas.readings)

    def test_readings_for_task(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        cas = make_cas(server)
        a = submit_default_task(cas)
        b = submit_default_task(cas)
        sim.run(until=1900.0)
        assert len(cas.readings_for_task(a)) == 3 * 2
        assert len(cas.readings_for_task(b)) == 3 * 2

    def test_on_data_callback(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        seen = []
        cas = make_cas(server, on_data=seen.append)
        submit_default_task(cas, sampling_duration_s=600.0)
        sim.run(until=650.0)
        assert len(seen) == 2

    def test_update_task_param(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=4)
        cas = make_cas(server)
        task_id = submit_default_task(cas)
        updated = cas.update_task_param(task_id, spatial_density=3)
        assert updated.spatial_density == 3
        assert server.tasks.get(task_id).spatial_density == 3

    def test_delete_task(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        cas = make_cas(server)
        task_id = submit_default_task(cas)
        cas.delete_task(task_id)
        assert task_id not in cas.task_ids
        sim.run(until=1900.0)
        assert cas.readings == []

    def test_cannot_touch_foreign_task(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        mine = make_cas(server, "mine")
        theirs = make_cas(server, "theirs")
        task_id = submit_default_task(mine)
        with pytest.raises(KeyError):
            theirs.delete_task(task_id)
        with pytest.raises(KeyError):
            theirs.update_task_param(task_id, spatial_density=1)


class TestMultipleApplications:
    def test_two_apps_coexist_with_isolated_data(self):
        """The paper: multiple crowdsensing servers can coexist, and the
        same device can serve both."""
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        weather = make_cas(server, "weather")
        traffic = make_cas(server, "traffic")
        submit_default_task(weather, sampling_duration_s=600.0)
        submit_default_task(traffic, sampling_duration_s=600.0)
        sim.run(until=650.0)
        assert len(weather.readings) == 2
        assert len(traffic.readings) == 2
        assert {p.task_id for p in weather.readings}.isdisjoint(
            {p.task_id for p in traffic.readings}
        )


class TestAggregates:
    def test_mean_value(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        cas = make_cas(server)
        task_id = submit_default_task(cas, sampling_duration_s=600.0)
        sim.run(until=650.0)
        mean = cas.mean_value(task_id)
        assert 1000.0 < mean < 1025.0
        assert cas.mean_value() == pytest.approx(mean)

    def test_mean_value_empty(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=1)
        cas = make_cas(server)
        assert cas.mean_value() is None

    def test_distinct_devices(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=4)
        cas = make_cas(server)
        submit_default_task(cas)
        sim.run(until=1900.0)
        assert 2 <= cas.distinct_devices() <= 4

    def test_mean_value_on_empty_task(self):
        """A live task with zero readings yet has no mean — not a crash."""
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=1)
        cas = make_cas(server)
        task_id = submit_default_task(cas)
        assert cas.mean_value(task_id) is None
        assert cas.readings_for_task(task_id) == []

    def test_mean_value_on_unknown_task_id(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=1)
        cas = make_cas(server)
        assert cas.mean_value(999_999) is None

    def test_distinct_devices_counts_hashes_not_points(self):
        """Two readings from the same hashed device count once; the raw
        device id never appears (the paper's privacy filter)."""
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=1)
        cas = make_cas(server)
        task_id = cas.task(
            SensorType.BAROMETER,
            CENTER,
            1000.0,
            1,
            sampling_period_s=600.0,
            sampling_duration_s=1800.0,
        )
        sim.run(until=1900.0)
        assert len(cas.readings) >= 2  # several rounds, one device
        assert cas.distinct_devices() == 1
        hashes = {p.device_hash for p in cas.readings}
        assert len(hashes) == 1
        assert "d0" not in hashes  # hashed, never the raw IMEI/device id


class TestDeleteTaskPurge:
    def test_delete_purges_readings_of_that_task(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        cas = make_cas(server)
        keep = submit_default_task(cas, sampling_duration_s=600.0)
        doomed = submit_default_task(cas, sampling_duration_s=600.0)
        sim.run(until=650.0)
        assert cas.readings_for_task(doomed)
        before_keep = cas.readings_for_task(keep)
        cas.delete_task(doomed)
        assert cas.readings_for_task(doomed) == []
        assert cas.reading_count(doomed) == 0
        assert cas.readings_for_task(keep) == before_keep
        # The flat list and aggregates no longer see the disowned data.
        assert {p.task_id for p in cas.readings} == {keep}
        assert cas.mean_value() == pytest.approx(cas.mean_value(keep))

    def test_late_delivery_for_deleted_task_is_dropped(self):
        """A callback in flight when delete_task runs must not resurrect
        the deleted task's data."""
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        cas = make_cas(server)
        task_id = submit_default_task(cas, sampling_duration_s=600.0)
        sim.run(until=650.0)
        point = cas.readings_for_task(task_id)[0]
        cas.delete_task(task_id)
        cas.receive_sensed_data(point)  # late delivery, post-delete
        assert cas.readings_for_task(task_id) == []
        assert task_id not in {p.task_id for p in cas.readings}
        assert cas.late_deliveries_dropped == 1

    def test_delivery_for_foreign_task_is_dropped(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        mine = make_cas(server, "mine")
        theirs = make_cas(server, "theirs")
        submit_default_task(mine, sampling_duration_s=600.0)
        sim.run(until=650.0)
        stray = mine.readings[0]
        theirs.receive_sensed_data(stray)
        assert theirs.readings == []
        assert theirs.late_deliveries_dropped == 1


class TestCallbackHardening:
    def test_on_data_exception_does_not_corrupt_readings(self):
        """An application's buggy on_data hook loses nothing: the
        reading is recorded first and the exception is contained."""
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)

        def explode(_point):
            raise RuntimeError("application bug")

        cas = make_cas(server, on_data=explode)
        task_id = submit_default_task(cas, sampling_duration_s=600.0)
        sim.run(until=650.0)  # must not blow up the delivery path
        assert len(cas.readings) == 2
        assert cas.readings_for_task(task_id) == cas.readings
        assert cas.callback_errors == 2
        assert cas.mean_value(task_id) is not None

    def test_on_data_failure_only_counts_failed_invocations(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        seen = []

        def flaky(point):
            seen.append(point)
            if len(seen) == 1:
                raise ValueError("first delivery explodes")

        cas = make_cas(server, on_data=flaky)
        submit_default_task(cas, sampling_duration_s=600.0)
        sim.run(until=650.0)
        assert len(seen) == 2
        assert cas.callback_errors == 1
        assert len(cas.readings) == 2
