"""Tests for the crowdsensing application-server library."""

from __future__ import annotations

import pytest

from repro.devices.sensors import SensorType
from repro.serverlib.appserver import CrowdsensingAppServer
from repro.sim.engine import Simulator
from tests.test_core_server import CENTER, make_setup


def make_cas(server, name="weather", on_data=None):
    return CrowdsensingAppServer(server, name, on_data=on_data)


def submit_default_task(cas, **kwargs):
    defaults = dict(
        sampling_period_s=600.0,
        sampling_duration_s=1800.0,
    )
    defaults.update(kwargs)
    return cas.task(SensorType.BAROMETER, CENTER, 1000.0, 2, **defaults)


class TestTaskApi:
    def test_task_submission_and_data_flow(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        cas = make_cas(server)
        task_id = submit_default_task(cas)
        assert task_id in cas.task_ids
        sim.run(until=1900.0)
        assert len(cas.readings) == 6  # 3 requests × density 2
        assert all(p.task_id == task_id for p in cas.readings)

    def test_readings_for_task(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        cas = make_cas(server)
        a = submit_default_task(cas)
        b = submit_default_task(cas)
        sim.run(until=1900.0)
        assert len(cas.readings_for_task(a)) == 3 * 2
        assert len(cas.readings_for_task(b)) == 3 * 2

    def test_on_data_callback(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        seen = []
        cas = make_cas(server, on_data=seen.append)
        submit_default_task(cas, sampling_duration_s=600.0)
        sim.run(until=650.0)
        assert len(seen) == 2

    def test_update_task_param(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=4)
        cas = make_cas(server)
        task_id = submit_default_task(cas)
        updated = cas.update_task_param(task_id, spatial_density=3)
        assert updated.spatial_density == 3
        assert server.tasks.get(task_id).spatial_density == 3

    def test_delete_task(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        cas = make_cas(server)
        task_id = submit_default_task(cas)
        cas.delete_task(task_id)
        assert task_id not in cas.task_ids
        sim.run(until=1900.0)
        assert cas.readings == []

    def test_cannot_touch_foreign_task(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        mine = make_cas(server, "mine")
        theirs = make_cas(server, "theirs")
        task_id = submit_default_task(mine)
        with pytest.raises(KeyError):
            theirs.delete_task(task_id)
        with pytest.raises(KeyError):
            theirs.update_task_param(task_id, spatial_density=1)


class TestMultipleApplications:
    def test_two_apps_coexist_with_isolated_data(self):
        """The paper: multiple crowdsensing servers can coexist, and the
        same device can serve both."""
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        weather = make_cas(server, "weather")
        traffic = make_cas(server, "traffic")
        submit_default_task(weather, sampling_duration_s=600.0)
        submit_default_task(traffic, sampling_duration_s=600.0)
        sim.run(until=650.0)
        assert len(weather.readings) == 2
        assert len(traffic.readings) == 2
        assert {p.task_id for p in weather.readings}.isdisjoint(
            {p.task_id for p in traffic.readings}
        )


class TestAggregates:
    def test_mean_value(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=3)
        cas = make_cas(server)
        task_id = submit_default_task(cas, sampling_duration_s=600.0)
        sim.run(until=650.0)
        mean = cas.mean_value(task_id)
        assert 1000.0 < mean < 1025.0
        assert cas.mean_value() == pytest.approx(mean)

    def test_mean_value_empty(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=1)
        cas = make_cas(server)
        assert cas.mean_value() is None

    def test_distinct_devices(self):
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=4)
        cas = make_cas(server)
        submit_default_task(cas)
        sim.run(until=1900.0)
        assert 2 <= cas.distinct_devices() <= 4
