"""Tests for the asyncio service front (repro.service).

Covers the ISSUE 9 service-layer checklist: the lifecycle transition
table is *total* (no request can skip SHED/FAILED accounting), illegal
transitions raise, queue-full behaviour sheds with a sized hint,
shutdown resolves every in-flight future, the load generator's trace
is seed-deterministic and identical at any consumer count, and shed
Retry-After hints round-trip through ``RetryPolicy.shed_delay_s``.

No pytest-asyncio in the image: async scenarios run via ``asyncio.run``
inside synchronous test functions.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import OverloadPolicy, RetryPolicy
from repro.core.overload import RequestClass
from repro.service import (
    KINDS_BY_CLASS,
    LEGAL_TRANSITIONS,
    REQUEST_CLASS_OF,
    TERMINAL_STATES,
    AppServerBackend,
    IllegalTransitionError,
    LifecycleLedger,
    LoadGenerator,
    LoadSpec,
    RequestKind,
    RequestState,
    ResponseStatus,
    SenseAidService,
    ServiceClosedError,
    ServiceConfig,
    build_schedule,
    build_world,
    percentile,
    trace_signature,
)

#: Admission wide open — tests that are not about shedding use this so
#: every request is admitted.
OPEN_ADMISSION = OverloadPolicy(queue_capacity=10_000, service_rate_per_s=100_000.0)


def echo_handler(request):
    """Pure function of the request — identical results at any
    consumer count."""
    return {"kind": request.kind.value, "index": request.payload.get("index")}


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Lifecycle state machine
# ----------------------------------------------------------------------


class TestTransitionTable:
    def test_table_is_total_over_states(self):
        """Every state has an entry; terminals go nowhere."""
        for state in RequestState:
            assert state in LEGAL_TRANSITIONS
        for state in TERMINAL_STATES:
            assert LEGAL_TRANSITIONS[state] == frozenset()

    def test_every_open_state_reaches_a_terminal(self):
        """No request can get stuck: from every non-terminal state some
        terminal is reachable, and FAILED is reachable in one hop — the
        edge the shutdown/cancellation paths use, so nothing can skip
        SHED/FAILED accounting."""
        for state in RequestState:
            if state in TERMINAL_STATES:
                continue
            assert LEGAL_TRANSITIONS[state] & TERMINAL_STATES
            assert RequestState.FAILED in LEGAL_TRANSITIONS[state]

    def test_shed_only_from_queued(self):
        """SHED is a front-door-only outcome — once admitted, a request
        is served or failed, never silently dropped."""
        for state, targets in LEGAL_TRANSITIONS.items():
            if RequestState.SHED in targets:
                assert state is RequestState.QUEUED


class TestLifecycleLedger:
    def test_happy_path_accounting(self):
        ledger = LifecycleLedger()
        ledger.create("r1", 0.0)
        ledger.advance("r1", RequestState.ADMITTED, 0.1)
        ledger.advance("r1", RequestState.RUNNING, 0.2)
        ledger.advance("r1", RequestState.DONE, 0.3)
        assert ledger.created == 1
        assert ledger.done == 1
        assert ledger.open_requests == 0
        ledger.assert_accounted()
        record = ledger.records["r1"]
        assert record.terminal
        assert record.at(RequestState.RUNNING) == 0.2
        with pytest.raises(KeyError):
            record.at(RequestState.SHED)

    @pytest.mark.parametrize(
        "path,bad",
        [
            ([], RequestState.RUNNING),  # QUEUED -> RUNNING skips ADMITTED
            ([], RequestState.DONE),  # QUEUED -> DONE skips everything
            ([RequestState.ADMITTED], RequestState.DONE),
            ([RequestState.ADMITTED], RequestState.SHED),  # post-admit shed
            ([RequestState.ADMITTED, RequestState.RUNNING], RequestState.SHED),
            ([RequestState.SHED], RequestState.ADMITTED),  # out of terminal
        ],
    )
    def test_illegal_transitions_raise(self, path, bad):
        ledger = LifecycleLedger()
        ledger.create("r1", 0.0)
        for state in path:
            ledger.advance("r1", state, 0.0)
        with pytest.raises(IllegalTransitionError):
            ledger.advance("r1", bad, 0.0)

    def test_advance_unknown_request_raises(self):
        ledger = LifecycleLedger()
        with pytest.raises(IllegalTransitionError):
            ledger.advance("ghost", RequestState.ADMITTED, 0.0)

    def test_duplicate_create_raises(self):
        ledger = LifecycleLedger()
        ledger.create("r1", 0.0)
        with pytest.raises(ValueError):
            ledger.create("r1", 1.0)

    def test_assert_accounted_detects_imbalance(self):
        ledger = LifecycleLedger()
        ledger.create("r1", 0.0)
        ledger.created += 1  # simulate a request that skipped the ledger
        with pytest.raises(AssertionError):
            ledger.assert_accounted()

    def test_counters_only_mode(self):
        ledger = LifecycleLedger(keep_records=False)
        ledger.create("r1", 0.0)
        ledger.advance("r1", RequestState.SHED, 0.0)
        assert ledger.records == {}
        assert ledger.shed == 1
        ledger.assert_accounted()


# ----------------------------------------------------------------------
# Request/response vocabulary
# ----------------------------------------------------------------------


class TestApiMapping:
    def test_every_kind_has_an_admission_class(self):
        for kind in RequestKind:
            assert kind in REQUEST_CLASS_OF

    def test_kinds_by_class_partitions_the_vocabulary(self):
        seen = [k for kinds in KINDS_BY_CLASS.values() for k in kinds]
        assert sorted(seen, key=lambda k: k.value) == sorted(
            RequestKind, key=lambda k: k.value
        )
        for request_class, kinds in KINDS_BY_CLASS.items():
            for kind in kinds:
                assert REQUEST_CLASS_OF[kind] is request_class

    def test_mutations_are_registrations_delivery_is_upload(self):
        assert REQUEST_CLASS_OF[RequestKind.CREATE_TASK] is RequestClass.REGISTRATION
        assert REQUEST_CLASS_OF[RequestKind.DELIVER_DATA] is RequestClass.UPLOAD
        assert REQUEST_CLASS_OF[RequestKind.QUERY_DATA] is RequestClass.QUERY


# ----------------------------------------------------------------------
# Service loop
# ----------------------------------------------------------------------


class TestServiceLoop:
    def test_submit_ok_and_ledger_total(self):
        async def scenario():
            config = ServiceConfig(overload=OPEN_ADMISSION)
            async with SenseAidService(echo_handler, config) as service:
                responses = await asyncio.gather(
                    *(
                        service.submit(RequestKind.QUERY_DATA, {"index": i})
                        for i in range(20)
                    )
                )
            assert all(r.ok for r in responses)
            assert {r.result["index"] for r in responses} == set(range(20))
            assert all(r.latency_s >= 0.0 for r in responses)
            service.ledger.assert_accounted()
            assert service.ledger.done == 20
            assert service.ledger.open_requests == 0
            assert service.stats.ok == 20
            return service.scorecard()

        scorecard = run(scenario())
        assert scorecard["lifecycle"]["created"] == 20
        assert scorecard["by_kind"] == {"query_data": 20}
        assert scorecard["lifecycle"]["transitions"]["running->done"] == 20

    def test_submit_when_not_running_raises(self):
        async def scenario():
            service = SenseAidService(echo_handler)
            with pytest.raises(ServiceClosedError):
                await service.submit(RequestKind.QUERY_DATA)
            async with service:
                pass
            with pytest.raises(ServiceClosedError):
                await service.submit(RequestKind.QUERY_DATA)

        run(scenario())

    def test_handler_exception_becomes_failed_response(self):
        def broken(request):
            raise ValueError("kaboom")

        async def scenario():
            config = ServiceConfig(overload=OPEN_ADMISSION)
            async with SenseAidService(broken, config) as service:
                response = await service.submit(RequestKind.DELIVER_DATA)
            assert response.status is ResponseStatus.FAILED
            assert "ValueError" in response.error and "kaboom" in response.error
            assert service.ledger.failed == 1
            service.ledger.assert_accounted()

        run(scenario())

    def test_admission_shed_carries_retry_after(self):
        policy = OverloadPolicy(
            queue_capacity=4, service_rate_per_s=1.0, retry_after_base_s=2.0
        )

        async def scenario():
            config = ServiceConfig(overload=policy, consumers=1)
            async with SenseAidService(echo_handler, config) as service:
                responses = [
                    await service.submit(RequestKind.QUERY_DATA) for _ in range(8)
                ]
            shed = [r for r in responses if r.shed]
            ok = [r for r in responses if r.ok]
            # QUERY threshold = 4 * 0.5 = 2: two admitted, six shed.
            assert len(ok) == 2 and len(shed) == 6
            for response in shed:
                assert response.error == "overloaded"
                assert response.retry_after_s >= policy.retry_after_base_s
            assert service.stats.shed_admission == 6
            assert service.ledger.shed == 6
            service.ledger.assert_accounted()

        run(scenario())

    def test_queue_full_sheds_with_sized_hint_and_shutdown_resolves_all(self):
        """Fill the one-deep physical queue behind a slow request, then
        verify the overflow shed hint and that drain=False shutdown
        resolves every outstanding future (ledger stays total)."""

        async def scenario():
            config = ServiceConfig(
                queue_capacity=1,
                consumers=1,
                concurrency_slots=1,
                service_time_s=5.0,  # consumer parks here; never finishes
                overload=OPEN_ADMISSION,
            )
            service = SenseAidService(echo_handler, config)
            await service.start()
            first = asyncio.ensure_future(service.submit(RequestKind.QUERY_DATA))
            await asyncio.sleep(0.05)  # consumer picked `first`, queue empty
            second = asyncio.ensure_future(service.submit(RequestKind.QUERY_DATA))
            await asyncio.sleep(0.05)  # `second` occupies the only queue slot
            overflow = await service.submit(RequestKind.QUERY_DATA)
            assert overflow.shed
            expected_hint = (
                config.overload.retry_after_base_s
                + config.queue_capacity / config.overload.service_rate_per_s
            )
            assert overflow.retry_after_s == pytest.approx(expected_hint)
            assert service.stats.shed_queue_full == 1

            await service.stop(drain=False)
            first_response, second_response = await asyncio.gather(first, second)
            assert first_response.status is ResponseStatus.FAILED
            assert first_response.error == "cancelled"
            assert second_response.status is ResponseStatus.FAILED
            assert second_response.error == "shutdown"
            service.ledger.assert_accounted()
            assert service.ledger.open_requests == 0
            assert service.ledger.created == 3

        run(scenario())

    def test_stop_with_drain_finishes_queued_work(self):
        async def scenario():
            config = ServiceConfig(overload=OPEN_ADMISSION, consumers=2)
            service = SenseAidService(echo_handler, config)
            await service.start()
            pending = [
                asyncio.ensure_future(
                    service.submit(RequestKind.QUERY_DATA, {"index": i})
                )
                for i in range(10)
            ]
            await asyncio.sleep(0)  # let every submit pass the front door
            await service.stop(drain=True)
            responses = await asyncio.gather(*pending)
            assert all(r.ok for r in responses)
            assert service.ledger.done == 10
            service.ledger.assert_accounted()

        run(scenario())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(queue_capacity=0)
        with pytest.raises(ValueError):
            ServiceConfig(consumers=0)
        with pytest.raises(ValueError):
            ServiceConfig(concurrency_slots=0)
        with pytest.raises(ValueError):
            ServiceConfig(service_time_s=-1.0)


# ----------------------------------------------------------------------
# Load generator
# ----------------------------------------------------------------------


class TestSchedule:
    def test_same_seed_same_schedule_and_signature(self):
        spec = LoadSpec(seed=11, n_requests=64)
        first, second = build_schedule(spec), build_schedule(spec)
        assert first == second
        assert trace_signature(first) == trace_signature(second)

    def test_different_seed_different_signature(self):
        sig_a = trace_signature(build_schedule(LoadSpec(seed=1, n_requests=64)))
        sig_b = trace_signature(build_schedule(LoadSpec(seed=2, n_requests=64)))
        assert sig_a != sig_b

    def test_offsets_strictly_increase(self):
        schedule = build_schedule(LoadSpec(seed=3, n_requests=50))
        offsets = [p.offset_s for p in schedule]
        assert offsets == sorted(offsets)

    def test_mix_weights_respected(self):
        spec = LoadSpec(
            seed=5,
            n_requests=100,
            mix={"upload": 1.0},  # only deliveries
        )
        schedule = build_schedule(spec)
        assert {p.kind for p in schedule} == {RequestKind.DELIVER_DATA}

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LoadSpec(mode="bursty")
        with pytest.raises(ValueError):
            LoadSpec(n_requests=0)
        with pytest.raises(ValueError):
            LoadSpec(rate_rps=0.0)
        with pytest.raises(ValueError):
            LoadSpec(mix={"upload": 0.0})

    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50.0) == 50.0
        assert percentile(values, 99.0) == 99.0
        assert percentile(values, 100.0) == 100.0
        assert percentile([], 50.0) == 0.0
        with pytest.raises(ValueError):
            percentile(values, 101.0)


class TestLoadGeneratorDeterminism:
    def _run_with_consumers(self, consumers):
        async def scenario():
            config = ServiceConfig(consumers=consumers, overload=OPEN_ADMISSION)
            spec = LoadSpec(seed=21, n_requests=80, mode="open", rate_rps=4000.0)
            generator = LoadGenerator(spec, time_scale=0.01)
            async with SenseAidService(echo_handler, config) as service:
                report = await generator.run(service)
            service.ledger.assert_accounted()
            return report

        return run(scenario())

    def test_parallel_equals_serial(self):
        """Same seed → identical request trace and identical outcomes
        whether one consumer or eight drain the queue."""
        serial = self._run_with_consumers(1)
        parallel = self._run_with_consumers(8)
        assert serial.trace_sig == parallel.trace_sig
        assert serial.ok == parallel.ok == 80
        assert serial.shed == parallel.shed == 0

        def outcome_key(report):
            return [
                (o.index, o.kind.value, o.response.status.value, o.response.result)
                for o in report.outcomes
            ]

        assert outcome_key(serial) == outcome_key(parallel)

    def test_closed_loop_measures_throughput(self):
        async def scenario():
            config = ServiceConfig(overload=OPEN_ADMISSION)
            spec = LoadSpec(seed=9, n_requests=60, mode="closed", concurrency=4)
            generator = LoadGenerator(spec)
            async with SenseAidService(echo_handler, config) as service:
                report = await generator.run(service)
            assert report.ok == 60
            assert report.achieved_rps > 0.0
            payload = report.as_dict()
            assert payload["mode"] == "closed"
            assert payload["ok"] == 60
            assert payload["p99_latency_ms"] >= payload["p50_latency_ms"] >= 0.0

        run(scenario())

    def test_outcomes_cover_every_planned_request(self):
        """ok + shed + failed == n_requests even under heavy shedding —
        the generator-side mirror of the ledger totality check."""

        async def scenario():
            policy = OverloadPolicy(queue_capacity=8, service_rate_per_s=5.0)
            config = ServiceConfig(overload=policy)
            spec = LoadSpec(seed=13, n_requests=120, mode="open", rate_rps=5000.0)
            generator = LoadGenerator(spec, time_scale=0.001)
            async with SenseAidService(echo_handler, config) as service:
                report = await generator.run(service)
            assert report.ok + report.shed + report.failed == 120
            assert report.shed > 0  # the point of the tiny policy
            assert [o.index for o in report.outcomes] == list(range(120))
            service.ledger.assert_accounted()

        run(scenario())


class TestRetryAfterRoundTrip:
    def test_shed_hint_flows_through_retry_policy(self):
        """The server's Retry-After hint must round-trip: every retry
        wait the generator took equals ``shed_delay_s(attempt, hint)``
        for the hint that shed response carried."""
        retry_policy = RetryPolicy()

        async def scenario():
            policy = OverloadPolicy(
                queue_capacity=6, service_rate_per_s=20.0, retry_after_base_s=2.0
            )
            config = ServiceConfig(overload=policy)
            spec = LoadSpec(seed=17, n_requests=150, mode="open", rate_rps=8000.0)
            generator = LoadGenerator(
                spec, retry_policy=retry_policy, time_scale=0.001
            )
            async with SenseAidService(echo_handler, config) as service:
                report = await generator.run(service)
            service.ledger.assert_accounted()
            return report

        report = run(scenario())
        waits = [
            (attempt, hint, delay)
            for outcome in report.outcomes
            for attempt, (hint, delay) in enumerate(outcome.retry_waits, start=1)
        ]
        assert waits, "overload spec must force at least one retry"
        for attempt, hint, delay in waits:
            assert hint > 0.0  # every shed carried a hint
            assert delay == pytest.approx(retry_policy.shed_delay_s(attempt, hint))
            assert delay >= min(hint, retry_policy.retry_after_cap_s)

    def test_retry_count_bounded_by_policy(self):
        retry_policy = RetryPolicy(max_attempts=2)

        async def scenario():
            policy = OverloadPolicy(queue_capacity=4, service_rate_per_s=1.0)
            config = ServiceConfig(overload=policy)
            spec = LoadSpec(seed=23, n_requests=60, mode="open", rate_rps=8000.0)
            generator = LoadGenerator(
                spec, retry_policy=retry_policy, time_scale=0.001
            )
            async with SenseAidService(echo_handler, config) as service:
                report = await generator.run(service)
            assert max(o.attempts for o in report.outcomes) <= 2
            assert report.retries > 0

        run(scenario())


# ----------------------------------------------------------------------
# End to end against a real CrowdsensingAppServer backend
# ----------------------------------------------------------------------


class TestAppServerBackend:
    def test_four_call_api_end_to_end(self):
        sim, _, cas = build_world()
        backend = AppServerBackend(sim, cas, slots=4)

        async def scenario():
            config = ServiceConfig(overload=OPEN_ADMISSION)
            async with SenseAidService(backend.handle, config) as service:
                created = await service.submit(
                    RequestKind.CREATE_TASK, {"slot": 0, "density": 2}
                )
                assert created.ok and created.result["noop"] is False
                dup = await service.submit(RequestKind.CREATE_TASK, {"slot": 0})
                assert dup.ok and dup.result["noop"] is True
                assert dup.result["task_id"] == created.result["task_id"]

                delivered = await service.submit(
                    RequestKind.DELIVER_DATA,
                    {"slot": 0, "value": 1011.5, "device_hash": "devA"},
                )
                assert delivered.ok and delivered.result["accepted"] is True

                queried = await service.submit(RequestKind.QUERY_DATA, {"slot": 0})
                assert queried.ok
                assert queried.result["readings"] == 1
                assert queried.result["mean"] == pytest.approx(1011.5)

                updated = await service.submit(
                    RequestKind.UPDATE_TASK, {"slot": 0, "density": 3}
                )
                assert updated.ok and updated.result["spatial_density"] == 3

                deleted = await service.submit(RequestKind.DELETE_TASK, {"slot": 0})
                assert deleted.ok and deleted.result["noop"] is False
                vacant = await service.submit(RequestKind.DELETE_TASK, {"slot": 0})
                assert vacant.ok and vacant.result["noop"] is True

                stray = await service.submit(
                    RequestKind.DELIVER_DATA, {"slot": 0, "value": 1000.0}
                )
                assert stray.ok and stray.result["accepted"] is False
            service.ledger.assert_accounted()
            assert service.ledger.done == 8

        run(scenario())
        assert cas.readings == []  # delete purged the slot's data

    def test_loadgen_against_real_backend(self):
        sim, _, cas = build_world(seed=3)
        backend = AppServerBackend(sim, cas, slots=8)

        async def scenario():
            config = ServiceConfig(overload=OPEN_ADMISSION)
            spec = LoadSpec(seed=31, n_requests=100, mode="closed", concurrency=4)
            generator = LoadGenerator(spec)
            async with SenseAidService(backend.handle, config) as service:
                report = await generator.run(service)
            assert report.ok == 100
            assert report.failed == 0
            service.ledger.assert_accounted()

        run(scenario())
