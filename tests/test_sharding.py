"""Tests for the self-healing sharded control plane."""

from __future__ import annotations

import pytest

from repro.cellular.network import CellularNetwork
from repro.clientlib import SenseAidClient
from repro.core.config import (
    RetryPolicy,
    SelectorWeights,
    SenseAidConfig,
    ServerMode,
)
from repro.core.sharding import (
    ConsistentHashRing,
    PhiAccrualFailureDetector,
    ShardSpec,
    ShardedSenseAid,
)
from repro.core.tasks import TaskSpec
from repro.devices.sensors import SensorType
from repro.environment.geometry import Point
from repro.sim.engine import Simulator
from tests.conftest import make_device

S1 = Point(500.0, 500.0)
S2 = Point(1500.0, 500.0)
S3 = Point(2500.0, 500.0)
CENTER = Point(1500.0, 500.0)

RETRY = RetryPolicy(
    max_attempts=5,
    ack_timeout_s=20.0,
    backoff_base_s=5.0,
    backoff_multiplier=2.0,
    backoff_max_s=60.0,
    jitter_fraction=0.0,
    tail_wait_max_s=20.0,
)

#: Fairness-dominant weights: selection depends only on the durable
#: times-selected counters, so recovered shards re-converge exactly.
FAIR = SelectorWeights(alpha=0.0, beta=1.0, gamma=0.0, phi=0.0)


def make_config(**kwargs) -> SenseAidConfig:
    kwargs.setdefault("mode", ServerMode.COMPLETE)
    kwargs.setdefault("weights", FAIR)
    return SenseAidConfig(**kwargs)


def make_fleet(
    sim,
    *,
    wal_root=None,
    auto_failover=True,
    heartbeat_period_s=5.0,
    redirect_latency_s=0.05,
    config=None,
):
    network = CellularNetwork(sim)
    fleet = ShardedSenseAid(
        sim,
        network,
        [ShardSpec("s1", S1), ShardSpec("s2", S2), ShardSpec("s3", S3)],
        config if config is not None else make_config(),
        wal_root=wal_root,
        heartbeat_period_s=heartbeat_period_s,
        phi_threshold=8.0,
        min_std_s=heartbeat_period_s / 10.0,
        auto_failover=auto_failover,
        redirect_latency_s=redirect_latency_s,
    )
    return network, fleet


def add_client(sim, network, fleet, device_id, *, position=CENTER, retry=True):
    device = make_device(sim, device_id, position=position)
    client = SenseAidClient(
        sim,
        device,
        fleet.instance(fleet.shard_ids()[0]),
        network,
        retry_policy=RETRY if retry else None,
    )
    fleet.register(client)
    return client


def add_fleet_clients(sim, network, fleet, count=9):
    return {
        f"d{i:02d}": add_client(sim, network, fleet, f"d{i:02d}")
        for i in range(count)
    }


def make_task(**kwargs) -> TaskSpec:
    defaults = dict(
        sensor_type=SensorType.BAROMETER,
        center=CENTER,
        area_radius_m=2000.0,
        spatial_density=3,
        sampling_period_s=60.0,
        start_time=0.0,
        end_time=600.0,
    )
    defaults.update(kwargs)
    return TaskSpec(**defaults)


class TestRing:
    def test_owner_is_deterministic_across_instances(self):
        a = ConsistentHashRing(["s1", "s2", "s3"])
        b = ConsistentHashRing(["s1", "s2", "s3"])
        for key in (f"d{i}" for i in range(50)):
            assert a.owner(key) == b.owner(key)

    def test_every_shard_owns_something(self):
        ring = ConsistentHashRing(["s1", "s2", "s3"])
        owners = {ring.owner(f"d{i:03d}") for i in range(200)}
        assert owners == {"s1", "s2", "s3"}

    def test_preference_is_distinct_and_starts_at_owner(self):
        ring = ConsistentHashRing(["s1", "s2", "s3"])
        pref = ring.preference("d1")
        assert len(pref) == 3
        assert len(set(pref)) == 3
        assert pref[0] == ring.owner("d1")

    def test_removing_a_shard_only_moves_its_keys(self):
        full = ConsistentHashRing(["s1", "s2", "s3"])
        keys = [f"d{i:03d}" for i in range(300)]
        lost = [k for k in keys if full.owner(k) == "s2"]
        reduced = ConsistentHashRing(["s1", "s3"])
        for key in keys:
            if key not in lost:
                assert reduced.owner(key) == full.owner(key)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a", "a"])
        with pytest.raises(ValueError):
            ConsistentHashRing(["a", "b"], vnodes=0)


class TestFailureDetector:
    def test_zero_before_first_heartbeat(self):
        det = PhiAccrualFailureDetector(5.0)
        assert det.phi(100.0) == 0.0

    def test_low_while_beats_arrive(self):
        det = PhiAccrualFailureDetector(5.0, min_std_s=0.5)
        for t in (5.0, 10.0, 15.0, 20.0):
            det.heartbeat(t)
        assert det.phi(20.0) < 1.0

    def test_rises_with_missed_beats(self):
        det = PhiAccrualFailureDetector(5.0, min_std_s=0.5)
        for t in (5.0, 10.0, 15.0):
            det.heartbeat(t)
        assert det.phi(20.0) < 8.0 < det.phi(25.0)

    def test_phi_is_capped(self):
        det = PhiAccrualFailureDetector(5.0, min_std_s=0.5)
        det.heartbeat(5.0)
        det.heartbeat(10.0)
        assert det.phi(1e6) == PhiAccrualFailureDetector.PHI_CAP

    def test_validation(self):
        with pytest.raises(ValueError):
            PhiAccrualFailureDetector(0.0)
        with pytest.raises(ValueError):
            PhiAccrualFailureDetector(5.0, window=0)
        with pytest.raises(ValueError):
            PhiAccrualFailureDetector(5.0, min_std_s=0.0)


class TestTopology:
    def test_needs_two_shards(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ShardedSenseAid(
                sim, CellularNetwork(sim), [ShardSpec("only", S1)], make_config()
            )

    def test_duplicate_shard_ids_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ShardedSenseAid(
                sim,
                CellularNetwork(sim),
                [ShardSpec("x", S1), ShardSpec("x", S2)],
                make_config(),
            )

    def test_unknown_shard(self):
        sim = Simulator()
        _, fleet = make_fleet(sim)
        with pytest.raises(KeyError):
            fleet.instance("nope")

    def test_devices_land_on_ring_owner(self):
        sim = Simulator()
        network, fleet = make_fleet(sim)
        clients = add_fleet_clients(sim, network, fleet)
        for device_id, client in clients.items():
            home = fleet.home_shard(device_id)
            assert home == fleet.ring.owner(device_id)
            assert client.server is fleet.instance(home)
            assert device_id in fleet.instance(home).devices
        counts = fleet.devices_per_shard()
        assert sum(counts.values()) == len(clients)

    def test_registration_avoids_crashed_owner(self):
        sim = Simulator()
        network, fleet = make_fleet(sim, auto_failover=False)
        probe = "d00"
        owner = fleet.ring.owner(probe)
        fleet.crash_shard(owner)
        client = add_client(sim, network, fleet, probe)
        home = fleet.home_shard(probe)
        assert home != owner
        assert home == fleet.ring.preference(probe)[1]
        assert client.registered


class TestFailover:
    def test_crash_is_detected_and_failed_over(self, tmp_path):
        sim = Simulator()
        network, fleet = make_fleet(sim, wal_root=str(tmp_path))
        add_fleet_clients(sim, network, fleet)
        sim.run(until=30.0)
        victim = fleet.ring.owner("d00")
        old = fleet.instance(victim)
        fleet.crash_shard(victim)
        sim.run(until=60.0)
        assert fleet.failovers == 1
        record = fleet.failover_log[0]
        assert record.shard_id == victim
        assert record.standby_id != victim
        # Detection within a bounded number of heartbeat intervals.
        assert record.detection_intervals <= 3.0
        replacement = fleet.instance(victim)
        assert replacement is not old
        assert not replacement.crashed
        assert replacement.epoch == old.epoch + 1
        assert fleet.hosted_by(victim) == record.standby_id
        assert network.sense_aid_path_available
        fleet.shutdown()

    def test_clients_redirect_to_successor(self, tmp_path):
        sim = Simulator()
        network, fleet = make_fleet(sim, wal_root=str(tmp_path))
        clients = add_fleet_clients(sim, network, fleet)
        sim.run(until=30.0)
        victim = fleet.ring.owner("d00")
        fleet.crash_shard(victim)
        sim.run(until=60.0)
        replacement = fleet.instance(victim)
        for device_id, client in clients.items():
            if fleet.home_shard(device_id) == victim:
                assert client.server is replacement
                assert client.stats.shard_redirects == 1
                assert device_id in replacement.devices
            else:
                assert client.stats.shard_redirects == 0
        fleet.shutdown()

    def test_campaign_survives_crash(self, tmp_path):
        sim = Simulator()
        network, fleet = make_fleet(sim, wal_root=str(tmp_path))
        add_fleet_clients(sim, network, fleet)
        data = []
        handle = fleet.submit_task(make_task(spatial_density=3), data.append)
        sim.run(until=100.0)
        before = len(data)
        assert before > 0
        victim = max(handle.subtasks, key=lambda sid: handle.allocations[sid])
        fleet.crash_shard(victim)
        sim.run(until=600.0)
        assert fleet.failovers == 1
        assert len(data) > before
        # Every result carries the parent task id, whichever shard
        # served it.
        assert {p.task_id for p in data} == {handle.task.task_id}
        fleet.shutdown()

    def test_no_standby_leaves_outage(self, tmp_path):
        sim = Simulator()
        network, fleet = make_fleet(sim, wal_root=str(tmp_path))
        sim.run(until=20.0)
        for sid in fleet.shard_ids():
            fleet.crash_shard(sid)
        sim.run(until=60.0)
        assert fleet.failovers == 0
        fleet.shutdown()

    def test_failover_without_wal_resubmits_tasks(self):
        sim = Simulator()
        network, fleet = make_fleet(sim)
        add_fleet_clients(sim, network, fleet)
        data = []
        handle = fleet.submit_task(make_task(), data.append)
        sim.run(until=100.0)
        victim = max(handle.subtasks, key=lambda sid: handle.allocations[sid])
        old = fleet.instance(victim)
        fleet.crash_shard(victim)
        sim.run(until=600.0)
        assert fleet.failovers == 1
        assert fleet.instance(victim).epoch == old.epoch + 1
        assert len(data) > 0
        fleet.shutdown()

    def test_recover_shard_in_place(self, tmp_path):
        sim = Simulator()
        network, fleet = make_fleet(
            sim, wal_root=str(tmp_path), auto_failover=False
        )
        clients = add_fleet_clients(sim, network, fleet)
        sim.run(until=30.0)
        victim = fleet.ring.owner("d00")
        fleet.crash_shard(victim)
        sim.run(until=60.0)
        assert fleet.failovers == 0
        fleet.recover_shard(victim)
        sim.run(until=90.0)
        server = fleet.instance(victim)
        assert not server.crashed
        assert server.epoch == 2
        for device_id, client in clients.items():
            if fleet.home_shard(device_id) == victim:
                assert client.server is server
        fleet.shutdown()


class TestEpochFencing:
    def _partition_setup(self, tmp_path, redirect_latency_s):
        sim = Simulator()
        network, fleet = make_fleet(
            sim,
            wal_root=str(tmp_path),
            redirect_latency_s=redirect_latency_s,
        )
        clients = add_fleet_clients(sim, network, fleet)
        return sim, network, fleet, clients

    def test_zombie_wal_writes_are_fenced(self, tmp_path):
        sim, network, fleet, clients = self._partition_setup(tmp_path, 0.05)
        data = []
        handle = fleet.submit_task(make_task(), data.append)
        sim.run(until=30.0)
        # Partition a shard that actually hosts a subtask, so its
        # zombie keeps trying to record assignments after the fence.
        victim = max(handle.subtasks, key=lambda sid: handle.allocations[sid])
        zombie = fleet.instance(victim)
        fleet.partition_shard(victim)
        sim.run(until=300.0)
        assert fleet.failovers == 1
        record = fleet.failover_log[0]
        assert record.was_partitioned
        # The zombie is alive (split brain) but its log is fenced: its
        # scheduled sampling instants keep trying to record state.
        assert not zombie.crashed
        assert zombie._wal.fenced
        assert fleet.writes_fenced() > 0
        fleet.shutdown()

    def test_divergence_detected_and_repaired(self, tmp_path):
        # Redirect latency longer than a sampling interval: clients
        # keep talking to the fenced zombie for a while, so uploads are
        # acknowledged by an incumbent the successor never heard of.
        sim, network, fleet, clients = self._partition_setup(tmp_path, 90.0)
        data = []
        handle = fleet.submit_task(make_task(end_time=1200.0), data.append)
        sim.run(until=30.0)
        victim = max(handle.subtasks, key=lambda sid: handle.allocations[sid])
        zombie = fleet.instance(victim)
        fleet.partition_shard(victim)
        sim.run(until=400.0)
        assert fleet.failovers == 1
        successor = fleet.instance(victim)
        assert successor.epoch == zombie.epoch + 1
        diff = fleet.anti_entropy_diff()
        assert diff, "expected divergence from the zombie window"
        assert set(diff) == {victim}
        fleet.heal_shard(victim)
        report = fleet.repair()
        assert report["repaired_keys"] >= len(diff[victim])
        assert report["clean"]
        assert fleet.anti_entropy_diff() == {}
        # The zombie was retired for good.
        assert fleet.deposed_instance(victim) is None
        assert zombie.crashed
        # Merged keys are burned at the successor: a replay of one of
        # those uploads must be deduplicated, not double-counted.
        for key in diff[victim]:
            assert key in successor._seen_upload_ids
        fleet.shutdown()

    def test_no_divergence_without_split_brain(self, tmp_path):
        sim, network, fleet, clients = self._partition_setup(tmp_path, 0.05)
        data = []
        fleet.submit_task(make_task(), data.append)
        sim.run(until=100.0)
        victim = fleet.ring.owner("d00")
        fleet.crash_shard(victim)
        sim.run(until=600.0)
        assert fleet.failovers == 1
        # A clean crash (no zombie) should reconcile to nothing: every
        # client-acked upload is burned at the owner after WAL replay.
        assert fleet.anti_entropy_diff() == {}
        report = fleet.repair()
        assert report["repaired_keys"] == 0
        assert report["clean"]
        fleet.shutdown()


class TestCrossShardPlanning:
    def test_allocation_follows_candidates(self):
        sim = Simulator()
        network, fleet = make_fleet(sim)
        add_fleet_clients(sim, network, fleet, count=12)
        task = make_task(spatial_density=6)
        handle = fleet.submit_task(task, lambda p: None)
        assert sum(handle.allocations.values()) == 6
        counts = fleet.devices_per_shard()
        for sid, share in handle.allocations.items():
            assert share <= counts[sid]
        fleet.shutdown()

    def test_all_density_to_owner_when_no_candidates(self):
        sim = Simulator()
        network, fleet = make_fleet(sim)
        task = make_task(spatial_density=2)
        handle = fleet.submit_task(task, lambda p: None)
        assert sum(handle.allocations.values()) == 2
        assert len(handle.allocations) == 1
        fleet.shutdown()

    def test_demand_above_capacity_is_still_fully_allocated(self):
        sim = Simulator()
        network, fleet = make_fleet(sim)
        add_fleet_clients(sim, network, fleet, count=3)
        handle = fleet.submit_task(make_task(spatial_density=30), lambda p: None)
        assert sum(handle.allocations.values()) == 30
        fleet.shutdown()

    def test_degraded_window_is_flagged(self, tmp_path):
        sim = Simulator()
        network, fleet = make_fleet(
            sim, wal_root=str(tmp_path), auto_failover=False
        )
        add_fleet_clients(sim, network, fleet)
        data = []
        handle = fleet.submit_task(make_task(end_time=1200.0), data.append)
        assert not handle.degraded
        sim.run(until=100.0)
        victim = max(handle.subtasks, key=lambda sid: handle.allocations[sid])
        fleet.crash_shard(victim)
        assert handle.degraded
        sim.run(until=400.0)
        degraded_during_outage = handle.degraded_points
        assert fleet.fail_over(victim)
        assert not handle.degraded
        sim.run(until=1200.0)
        # Degradation was a window, not a terminal state.
        assert handle.degraded_points == degraded_during_outage
        assert handle.points > 0
        fleet.shutdown()

    def test_points_tagged_by_serving_shard(self):
        sim = Simulator()
        network, fleet = make_fleet(sim)
        add_fleet_clients(sim, network, fleet, count=12)
        data = []
        handle = fleet.submit_task(make_task(spatial_density=6), data.append)
        sim.run(until=300.0)
        assert handle.points == len(data)
        assert sum(handle.points_by_shard.values()) == handle.points
        assert set(handle.points_by_shard) <= set(handle.subtasks)
        fleet.shutdown()


class TestZeroLoss:
    def test_acked_uploads_survive_failover(self, tmp_path):
        """The headline guarantee: every upload a client holds an ack
        for is burned at the current owner after failover + repair."""
        sim = Simulator()
        network, fleet = make_fleet(sim, wal_root=str(tmp_path))
        clients = add_fleet_clients(sim, network, fleet)
        data = []
        fleet.submit_task(make_task(end_time=1200.0), data.append)
        sim.run(until=130.0)
        victim = fleet.ring.owner("d00")
        fleet.crash_shard(victim)
        sim.run(until=1200.0)
        assert fleet.failovers == 1
        fleet.repair()
        for device_id, client in clients.items():
            owner = fleet.instance(fleet.home_shard(device_id))
            for upload_id in client.acked_uploads:
                assert upload_id in owner._seen_upload_ids
        fleet.shutdown()
