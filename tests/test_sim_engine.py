"""Unit tests for the simulator engine, clock, and periodic processes."""

from __future__ import annotations

import pytest

from repro.sim.clock import SimClock, hours, minutes
from repro.sim.engine import Simulator
from repro.sim.processes import PeriodicProcess


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_cannot_move_backwards(self):
        clock = SimClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_unit_helpers(self):
        assert minutes(5) == 300.0
        assert hours(2) == 7200.0


class TestSimulator:
    def test_schedule_and_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "b")
        processed = sim.run()
        assert processed == 2
        assert fired == ["b", "a"]
        assert sim.now == 5.0

    def test_run_until_advances_clock_past_last_event(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=3.0)
        assert fired == []
        assert sim.pending_events == 1
        sim.run(until=10.0)
        assert fired == ["late"]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(7.0, fired.append, "x")
        sim.run()
        assert sim.now == 7.0
        assert fired == ["x"]

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        sim.cancel(event)
        sim.run()
        assert fired == []
        assert sim.pending_events == 0

    def test_cancel_none_is_noop(self):
        sim = Simulator()
        sim.cancel(None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_max_events_bound(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        processed = sim.run(max_events=10)
        assert processed == 10

    def test_run_for(self):
        sim = Simulator()
        sim.run_for(42.0)
        assert sim.now == 42.0

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def recurse():
            try:
                sim.run()
            except RuntimeError as exc:
                errors.append(exc)

        sim.schedule(1.0, recurse)
        sim.run()
        assert len(errors) == 1

    def test_determinism_same_seed(self):
        def trace(seed):
            sim = Simulator(seed=seed)
            rng = sim.rng.stream("test")
            values = []
            for i in range(5):
                sim.schedule(rng.random() * 10, values.append, i)
            sim.run()
            return values

        assert trace(99) == trace(99)


class TestPeriodicProcess:
    def test_fires_every_period(self):
        sim = Simulator()
        ticks = []
        PeriodicProcess(sim, 10.0, lambda: ticks.append(sim.now))
        sim.run(until=35.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_start_delay(self):
        sim = Simulator()
        ticks = []
        PeriodicProcess(sim, 10.0, lambda: ticks.append(sim.now), start_delay=0.0)
        sim.run(until=25.0)
        assert ticks == [0.0, 10.0, 20.0]

    def test_stop(self):
        sim = Simulator()
        ticks = []
        process = PeriodicProcess(sim, 10.0, lambda: ticks.append(sim.now))
        sim.run(until=15.0)
        process.stop()
        sim.run(until=100.0)
        assert ticks == [10.0]
        assert process.stopped

    def test_stop_from_callback(self):
        sim = Simulator()
        process = PeriodicProcess(sim, 5.0, lambda: process.stop())
        sim.run(until=100.0)
        assert process.firings == 1

    def test_max_firings(self):
        sim = Simulator()
        process = PeriodicProcess(sim, 1.0, lambda: None, max_firings=3)
        sim.run(until=100.0)
        assert process.firings == 3
        assert process.stopped

    def test_invalid_period(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 0.0, lambda: None)
