"""Unit tests for the event queue primitives."""

from __future__ import annotations

import pytest

from repro.sim.events import Event, EventQueue


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(-1.0, 0, lambda: None)

    def test_cancel_prevents_fire(self):
        fired = []
        event = Event(1.0, 0, fired.append, args=("x",))
        event.cancel()
        event.fire()
        assert fired == []

    def test_fire_invokes_callback_with_args(self):
        fired = []
        event = Event(1.0, 0, fired.append, args=("x",))
        event.fire()
        assert fired == ["x"]

    def test_cancel_is_idempotent(self):
        event = Event(1.0, 0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_ordering_by_time(self):
        early = Event(1.0, 5, lambda: None)
        late = Event(2.0, 0, lambda: None)
        assert early < late

    def test_ordering_by_priority_at_same_time(self):
        high = Event(1.0, 5, lambda: None, priority=-10)
        low = Event(1.0, 0, lambda: None, priority=0)
        assert high < low

    def test_ordering_by_sequence_as_tiebreak(self):
        first = Event(1.0, 0, lambda: None)
        second = Event(1.0, 1, lambda: None)
        assert first < second


class TestEventQueue:
    def test_empty_queue(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert queue.pop() is None
        assert queue.peek_time() is None

    def test_push_pop_in_time_order(self):
        queue = EventQueue()
        queue.push(3.0, lambda: "c")
        queue.push(1.0, lambda: "a")
        queue.push(2.0, lambda: "b")
        times = [queue.pop().time for _ in range(3)]
        assert times == [1.0, 2.0, 3.0]

    def test_same_time_pops_in_insertion_order(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, order.append, args=("first",))
        queue.push(1.0, order.append, args=("second",))
        queue.pop().fire()
        queue.pop().fire()
        assert order == ["first", "second"]

    def test_priority_beats_insertion_order(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, order.append, args=("late",), priority=0)
        queue.push(1.0, order.append, args=("early",), priority=-1)
        queue.pop().fire()
        queue.pop().fire()
        assert order == ["early", "late"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        event.cancel()
        queue.note_cancelled()
        assert len(queue) == 1
        popped = queue.pop()
        assert popped.time == 2.0

    def test_peek_time_skips_cancelled_head(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        event.cancel()
        queue.note_cancelled()
        assert queue.peek_time() == 5.0

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert not queue
        assert queue.pop() is None

    def test_live_count_tracks_pushes_and_pops(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        queue.pop()
        assert len(queue) == 1
