"""Unit tests for random streams and metric primitives."""

from __future__ import annotations

import pytest

from repro.sim.clock import SimClock
from repro.sim.metrics import Counter, MetricsRegistry, StateResidency, TimeSeries
from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(1)
        assert streams.stream("a") is streams.stream("a")

    def test_reproducible_across_instances(self):
        a = RandomStreams(42).stream("mobility").random()
        b = RandomStreams(42).stream("mobility").random()
        assert a == b

    def test_different_names_independent(self):
        streams = RandomStreams(42)
        a = streams.stream("a").random()
        b = streams.stream("b").random()
        assert a != b

    def test_creation_order_does_not_matter(self):
        s1 = RandomStreams(7)
        s1.stream("first")
        v1 = s1.stream("second").random()
        s2 = RandomStreams(7)
        v2 = s2.stream("second").random()
        assert v1 == v2

    def test_different_seeds_differ(self):
        assert RandomStreams(1).stream("x").random() != RandomStreams(2).stream(
            "x"
        ).random()

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(1).stream("")

    def test_spawn_is_deterministic(self):
        a = RandomStreams(5).spawn("child").stream("x").random()
        b = RandomStreams(5).spawn("child").stream("x").random()
        assert a == b

    def test_spawn_differs_from_parent(self):
        parent = RandomStreams(5)
        child = parent.spawn("child")
        assert parent.stream("x").random() != child.stream("x").random()


class TestCounter:
    def test_add(self):
        counter = Counter("c")
        counter.add()
        counter.add(2.5)
        assert counter.value == 3.5

    def test_cannot_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").add(-1)


class TestTimeSeries:
    def test_record_and_read(self):
        series = TimeSeries("s")
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert series.samples == [(1.0, 10.0), (2.0, 20.0)]
        assert len(series) == 2
        assert series.last() == (2.0, 20.0)

    def test_out_of_order_rejected(self):
        series = TimeSeries("s")
        series.record(2.0, 1.0)
        with pytest.raises(ValueError):
            series.record(1.0, 1.0)

    def test_empty_last(self):
        assert TimeSeries("s").last() is None


class TestStateResidency:
    def test_accumulates_per_state(self):
        clock = SimClock()
        residency = StateResidency(clock, "idle")
        clock.advance_to(10.0)
        residency.transition("active")
        clock.advance_to(15.0)
        residency.transition("idle")
        clock.advance_to(20.0)
        snapshot = residency.snapshot()
        assert snapshot["idle"] == pytest.approx(15.0)
        assert snapshot["active"] == pytest.approx(5.0)

    def test_snapshot_includes_open_occupancy(self):
        clock = SimClock()
        residency = StateResidency(clock, "idle")
        clock.advance_to(7.0)
        assert residency.snapshot()["idle"] == pytest.approx(7.0)

    def test_time_in_state(self):
        clock = SimClock()
        residency = StateResidency(clock, "idle")
        clock.advance_to(3.0)
        assert residency.time_in_state() == pytest.approx(3.0)
        residency.transition("active")
        assert residency.time_in_state() == 0.0

    def test_current_state(self):
        clock = SimClock()
        residency = StateResidency(clock, "a")
        residency.transition("b")
        assert residency.state == "b"


class TestMetricsRegistry:
    def test_counter_is_cached(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_series_is_cached(self):
        registry = MetricsRegistry()
        assert registry.series("x") is registry.series("x")

    def test_counter_values(self):
        registry = MetricsRegistry()
        registry.counter("a").add(2)
        registry.counter("b").add(3)
        assert registry.counter_values() == {"a": 2, "b": 3}

    def test_series_names_sorted(self):
        registry = MetricsRegistry()
        registry.series("zeta")
        registry.series("alpha")
        assert registry.series_names() == ["alpha", "zeta"]
