"""Tests for simulation-time-aware logging."""

from __future__ import annotations

import logging

import pytest

from repro.sim.engine import Simulator
from repro.sim.simlog import SimLogger


@pytest.fixture
def capture():
    records = []

    class Handler(logging.Handler):
        def emit(self, record):
            records.append(record)

    handler = Handler()
    root = logging.getLogger("repro")
    old_level = root.level
    root.addHandler(handler)
    root.setLevel(logging.DEBUG)
    yield records
    root.removeHandler(handler)
    root.setLevel(old_level)


class TestSimLogger:
    def test_message_carries_sim_time(self, capture):
        sim = Simulator()
        log = SimLogger(sim, "repro.test")
        sim.schedule(42.0, lambda: log.info("hello %s", "world"))
        sim.run()
        assert len(capture) == 1
        message = capture[0].getMessage()
        assert "[t=42.00s]" in message
        assert "hello world" in message

    def test_levels(self, capture):
        sim = Simulator()
        log = SimLogger(sim, "repro.test")
        log.debug("d")
        log.info("i")
        log.warning("w")
        log.error("e")
        assert [r.levelno for r in capture] == [
            logging.DEBUG,
            logging.INFO,
            logging.WARNING,
            logging.ERROR,
        ]

    def test_silent_when_disabled(self, capture):
        logging.getLogger("repro").setLevel(logging.ERROR)
        sim = Simulator()
        log = SimLogger(sim, "repro.test")
        log.debug("invisible")
        log.info("invisible")
        assert capture == []

    def test_no_formatting_cost_when_disabled(self):
        """Lazy rendering: args are not interpolated below the level."""
        logging.getLogger("repro.test").setLevel(logging.ERROR)

        class Boom:
            def __str__(self):
                raise AssertionError("should not be rendered")

        sim = Simulator()
        log = SimLogger(sim, "repro.test")
        log.debug("%s", Boom())  # must not raise


class TestServerLogging:
    def test_server_logs_task_acceptance_and_crash(self, capture):
        from tests.test_core_server import make_setup, make_spec

        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=2)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        server.crash()
        messages = [r.getMessage() for r in capture]
        assert any("accepted" in m for m in messages)
        assert any("crashed" in m for m in messages)
