"""Tests for simulation-time-aware logging."""

from __future__ import annotations

import logging

import pytest

from repro.sim.engine import Simulator
from repro.sim.simlog import SimLogger


@pytest.fixture
def capture():
    records = []

    class Handler(logging.Handler):
        def emit(self, record):
            records.append(record)

    handler = Handler()
    root = logging.getLogger("repro")
    old_level = root.level
    root.addHandler(handler)
    root.setLevel(logging.DEBUG)
    yield records
    root.removeHandler(handler)
    root.setLevel(old_level)


class TestSimLogger:
    def test_message_carries_sim_time(self, capture):
        sim = Simulator()
        log = SimLogger(sim, "repro.test")
        sim.schedule(42.0, lambda: log.info("hello %s", "world"))
        sim.run()
        assert len(capture) == 1
        message = capture[0].getMessage()
        assert "[t=42.00s]" in message
        assert "hello world" in message

    def test_levels(self, capture):
        sim = Simulator()
        log = SimLogger(sim, "repro.test")
        log.debug("d")
        log.info("i")
        log.warning("w")
        log.error("e")
        assert [r.levelno for r in capture] == [
            logging.DEBUG,
            logging.INFO,
            logging.WARNING,
            logging.ERROR,
        ]

    def test_silent_when_disabled(self, capture):
        logging.getLogger("repro").setLevel(logging.ERROR)
        sim = Simulator()
        log = SimLogger(sim, "repro.test")
        log.debug("invisible")
        log.info("invisible")
        assert capture == []

    def test_no_formatting_cost_when_disabled(self):
        """Lazy rendering: args are not interpolated below the level."""
        logging.getLogger("repro.test").setLevel(logging.ERROR)

        class Boom:
            def __str__(self):
                raise AssertionError("should not be rendered")

        sim = Simulator()
        log = SimLogger(sim, "repro.test")
        log.debug("%s", Boom())  # must not raise


class TestServerLogging:
    def test_server_logs_task_acceptance_and_crash(self, capture):
        from tests.test_core_server import make_setup, make_spec

        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=2)
        server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
        server.crash()
        messages = [r.getMessage() for r in capture]
        assert any("accepted" in m for m in messages)
        assert any("crashed" in m for m in messages)


class TestStructuredEvents:
    def test_event_records_time_source_kind_fields(self):
        from repro.sim.simlog import structured_log

        sim = Simulator()
        log = SimLogger(sim, "repro.test")
        sim.schedule(10.0, lambda: log.event("retry", device_id="d0", attempt=2))
        sim.run()
        records = structured_log(sim).records()
        assert len(records) == 1
        record = records[0]
        assert record.time == 10.0
        assert record.source == "repro.test"
        assert record.kind == "retry"
        assert record.as_dict() == {
            "time": 10.0,
            "source": "repro.test",
            "kind": "retry",
            "device_id": "d0",
            "attempt": 2,
        }

    def test_log_is_per_simulator(self):
        from repro.sim.simlog import structured_log

        sim_a, sim_b = Simulator(), Simulator()
        SimLogger(sim_a, "repro.test").event("only_a")
        assert len(structured_log(sim_a)) == 1
        assert len(structured_log(sim_b)) == 0

    def test_filter_by_kind_and_source(self):
        from repro.sim.simlog import structured_log

        sim = Simulator()
        log_x = SimLogger(sim, "repro.x")
        log_y = SimLogger(sim, "repro.y")
        log_x.event("drop", n=1)
        log_x.event("retry", n=2)
        log_y.event("drop", n=3)
        log = structured_log(sim)
        assert len(log.records(kind="drop")) == 2
        assert len(log.records(source="repro.x")) == 2
        assert len(log.records(kind="drop", source="repro.y")) == 1
        assert log.counts() == {"drop": 2, "retry": 1}

    def test_events_recorded_even_when_logging_disabled(self, capture):
        from repro.sim.simlog import structured_log

        logging.getLogger("repro").setLevel(logging.ERROR)
        sim = Simulator()
        log = SimLogger(sim, "repro.test")
        log.event("quiet", x=1)
        assert capture == []  # nothing through the logging tree...
        assert len(structured_log(sim)) == 1  # ...but the record exists

    def test_events_mirrored_at_debug(self, capture):
        sim = Simulator()
        # Fresh logger name: other tests pin "repro.test" above DEBUG.
        log = SimLogger(sim, "repro.mirror")
        log.event("drop", device_id="d0")
        assert len(capture) == 1
        assert "drop" in capture[0].getMessage()
        assert "device_id='d0'" in capture[0].getMessage()

    def test_signature_reflects_content(self):
        from repro.sim.simlog import structured_log

        def sig(events):
            sim = Simulator()
            log = SimLogger(sim, "repro.test")
            for kind, fields in events:
                log.event(kind, **fields)
            return structured_log(sim).signature()

        a = sig([("drop", {"n": 1}), ("retry", {"n": 2})])
        b = sig([("drop", {"n": 1}), ("retry", {"n": 2})])
        c = sig([("drop", {"n": 1}), ("retry", {"n": 3})])
        assert a == b
        assert a != c
        assert sig([]) != ""
