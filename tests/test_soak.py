"""Tests for the chaos soak harness: nemesis generation, invariant
suite, determinism, and the delta-debugging shrinker."""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultPlan
from repro.soak import (
    NemesisGenerator,
    SoakHarness,
    TIERS,
    build_reproducer,
    episode_seed,
    load_reproducer,
    replay_reproducer,
    resolve_tier,
    shrink_episode,
    shrink_events,
    write_reproducer,
)
from repro.soak.nemesis import WorldSpec


def small_world(horizon=1200.0) -> WorldSpec:
    return WorldSpec(
        horizon_s=horizon,
        shard_ids=("s1", "s2", "s3"),
        tower_ids=("s1-t0",),
        killable_device_ids=tuple(f"d{i:02d}" for i in range(10)),
        deregisterable_device_ids=tuple(f"d{i:02d}" for i in range(10)),
    )


class TestEpisodeSeeds:
    def test_stable_across_calls(self):
        assert episode_seed(7, 3) == episode_seed(7, 3)

    def test_distinct_per_episode_and_master(self):
        seeds = {episode_seed(m, e) for m in range(5) for e in range(5)}
        assert len(seeds) == 25

    def test_known_value_pinned(self):
        """Reproducers embed these seeds; a change breaks every one
        already minted, so the derivation is pinned."""
        import hashlib

        digest = hashlib.sha256(b"soak:7:0").digest()
        assert episode_seed(7, 0) == int.from_bytes(digest[:8], "big")


class TestNemesisGenerator:
    def test_same_seed_same_plan(self):
        world = small_world()
        tier = TIERS["medium"]
        a = NemesisGenerator(42).plan_for_episode(5, world, tier)
        b = NemesisGenerator(42).plan_for_episode(5, world, tier)
        assert a.to_json() == b.to_json()

    def test_different_episodes_differ(self):
        world = small_world()
        tier = TIERS["medium"]
        generator = NemesisGenerator(42)
        plans = {
            generator.plan_for_episode(e, world, tier).to_json()
            for e in range(6)
        }
        assert len(plans) == 6

    @pytest.mark.parametrize("tier_name", sorted(TIERS))
    def test_generated_plans_are_temporally_valid(self, tier_name):
        world = small_world()
        tier = TIERS[tier_name]
        generator = NemesisGenerator(7)
        for episode in range(8):
            plan = generator.plan_for_episode(episode, world, tier)
            assert plan.validate() == []

    def test_generated_plans_round_trip(self):
        world = small_world()
        generator = NemesisGenerator(13)
        for episode in range(4):
            plan = generator.plan_for_episode(episode, world, TIERS["heavy"])
            rebuilt = FaultPlan.from_json(plan.to_json())
            assert rebuilt.to_json() == plan.to_json()

    def test_event_times_inside_fault_window(self):
        world = small_world(horizon=1000.0)
        generator = NemesisGenerator(3)
        for episode in range(6):
            plan = generator.plan_for_episode(episode, world, TIERS["heavy"])
            for event in plan.events:
                assert 0.0 < event.at <= 0.9 * world.horizon_s

    def test_concurrent_shard_faults_bounded(self):
        """At every instant, strictly fewer shard-fault intervals are
        open than there are shards — a standby always exists."""
        world = small_world()
        generator = NemesisGenerator(99)
        for episode in range(10):
            plan = generator.plan_for_episode(episode, world, TIERS["heavy"])
            open_faults = 0
            for event in plan.events:
                if event.action in ("shard_crash", "shard_partition"):
                    open_faults += 1
                    assert open_faults <= len(world.shard_ids) - 1
                elif event.action == "shard_heal":
                    open_faults -= 1

    def test_network_partitions_never_overlap(self):
        world = small_world()
        generator = NemesisGenerator(17)
        for episode in range(10):
            plan = generator.plan_for_episode(episode, world, TIERS["heavy"])
            depth = 0
            for event in plan.events:
                if event.action == "partition":
                    depth += 1
                    assert depth == 1
                elif event.action == "heal":
                    depth -= 1

    def test_resolve_tier(self):
        assert resolve_tier("light") is TIERS["light"]
        assert resolve_tier(TIERS["heavy"]) is TIERS["heavy"]
        with pytest.raises(ValueError, match="unknown intensity tier"):
            resolve_tier("apocalyptic")


class TestSoakEpisodes:
    def test_clean_episode_passes_all_invariants(self, tmp_path):
        harness = SoakHarness(
            7, wal_root=str(tmp_path), tier="light", check_replay=False
        )
        result = harness.run_episode(0)
        assert result.ok, [v.message for v in result.violations]
        assert result.stats["data_points"] > 0
        assert result.stats["acked_uploads"] > 0

    def test_same_seed_episode_is_bit_identical(self, tmp_path):
        """The replay arm re-runs the plan in a different WAL dir and
        must land on the same structured-log signature and verdicts."""
        harness = SoakHarness(
            7, wal_root=str(tmp_path), tier="medium", check_replay=True
        )
        result = harness.run_episode(0)
        assert result.replay_checked
        assert "REPLAY_DIVERGED" not in result.codes()
        assert result.ok

    def test_report_aggregates(self, tmp_path):
        harness = SoakHarness(
            11, wal_root=str(tmp_path), tier="light", check_replay=False
        )
        report = harness.run(2)
        assert report.episodes == 2
        assert 0.0 <= report.invariant_pass_rate <= 1.0
        doc = report.as_dict()
        assert doc["tier"] == "light"
        assert len(doc["results"]) == 2

    def test_unknown_planted_bug_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown planted bug"):
            SoakHarness(7, wal_root=str(tmp_path), planted_bug="gremlin")


class TestPlantedBugAndShrinker:
    #: Seed 7 / episode 0 (medium) contains shard faults, so the
    #: planted lost-ack bug fires deterministically.
    SEED = 7

    @pytest.fixture(scope="class")
    def failing_episode(self, tmp_path_factory):
        harness = SoakHarness(
            self.SEED,
            wal_root=str(tmp_path_factory.mktemp("soak-wal")),
            tier="medium",
            check_replay=False,
            planted_bug="lost_ack",
        )
        return harness, harness.run_episode(0)

    def test_planted_bug_violates_acked_upload_loss(self, failing_episode):
        _, result = failing_episode
        assert not result.ok
        assert "ACKED_UPLOAD_LOST" in result.codes()

    def test_shrinker_minimizes_below_quarter(self, failing_episode):
        harness, result = failing_episode
        shrunk = shrink_episode(harness, result, max_runs=48)
        assert shrunk.shrunk_events >= 1
        assert shrunk.ratio <= 0.25
        assert "ACKED_UPLOAD_LOST" in shrunk.target_codes

    def test_reproducer_round_trip_still_fails(
        self, failing_episode, tmp_path
    ):
        harness, result = failing_episode
        shrunk = shrink_episode(harness, result, max_runs=48)
        reproducer = build_reproducer(harness, result, shrunk)
        path = str(tmp_path / "reproducer.json")
        write_reproducer(path, reproducer)
        loaded = load_reproducer(path)
        assert loaded["shrunk_events"] == shrunk.shrunk_events
        violations, _, _ = replay_reproducer(
            loaded, str(tmp_path / "replay-wal")
        )
        assert any(v.code == "ACKED_UPLOAD_LOST" for v in violations)

    def test_reproducer_is_valid_json_with_schema(
        self, failing_episode, tmp_path
    ):
        harness, result = failing_episode
        shrunk = shrink_episode(harness, result, max_runs=48)
        path = str(tmp_path / "reproducer.json")
        write_reproducer(path, build_reproducer(harness, result, shrunk))
        with open(path) as f:
            doc = json.load(f)
        assert doc["schema"] == "soak-reproducer/v1"
        assert doc["plan"]["schema"] == "fault-plan/v1"
        assert doc["world"]["n_devices"] == 10

    def test_load_rejects_non_reproducer(self, tmp_path):
        path = str(tmp_path / "bogus.json")
        with open(path, "w") as f:
            json.dump({"schema": "something/else"}, f)
        with pytest.raises(ValueError, match="not a soak reproducer"):
            load_reproducer(path)


class TestShrinkEvents:
    """ddmin over a synthetic predicate — no simulator involved."""

    @staticmethod
    def _events(n):
        return [
            {"at": float(i), "action": "partition", "kwargs": {}}
            for i in range(n)
        ]

    def test_shrinks_to_single_culprit(self):
        events = self._events(16)
        culprit = events[11]

        def fails(doc):
            return culprit in doc["events"]

        result = shrink_events(events, fails, max_runs=64)
        assert result.events == [culprit]
        assert result.converged

    def test_budget_exhaustion_reported(self):
        events = self._events(32)
        # Failure needs two specific far-apart events: slow to shrink.
        a, b = events[1], events[30]

        def fails(doc):
            return a in doc["events"] and b in doc["events"]

        result = shrink_events(events, fails, max_runs=3)
        assert not result.converged
        assert a in result.events and b in result.events
