"""The spatial index's exactness contract.

The uniform grid is a pure accelerator: every query must return
bit-identical results to the brute-force scan, including ordering
(distance from the centre, then device id), and a full simulation must
produce the same selection log whether the index is on or off.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellular.enodeb import ENodeB, TowerRegistry, grid_towers
from repro.cellular.network import CellularNetwork
from repro.cellular.spatial import UniformGridIndex
from repro.clientlib import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer
from repro.devices.sensors import SensorType
from repro.environment.campus import STUDY_SITES, default_campus
from repro.environment.geometry import Point
from repro.environment.mobility import RandomWaypointMobility, StaticMobility
from repro.environment.population import PopulationConfig, build_population
from repro.serverlib import CrowdsensingAppServer
from repro.sim.engine import Simulator
from tests.conftest import make_device


class _Dot:
    """Minimal registry device: id + position, no modem needed."""

    def __init__(self, device_id: str, position: Point) -> None:
        self.device_id = device_id
        self._position = position
        self.modem = None
        self.mobility = StaticMobility(position)

    def position(self) -> Point:
        return self._position


def _registry(cell_size_m: float = 500.0, **kwargs) -> TowerRegistry:
    return TowerRegistry(
        grid_towers(3000.0, 3000.0, rows=2, cols=2),
        cell_size_m=cell_size_m,
        **kwargs,
    )


class TestUniformGridIndex:
    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            UniformGridIndex(0.0)

    def test_update_moves_between_buckets(self):
        grid = UniformGridIndex(100.0)
        assert grid.update("a", Point(10.0, 10.0)) is True
        assert grid.update("a", Point(20.0, 20.0)) is False  # same cell
        assert grid.update("a", Point(150.0, 10.0)) is True
        assert len(grid) == 1
        assert grid.bucket_count() == 1

    def test_remove(self):
        grid = UniformGridIndex(100.0)
        grid.update("a", Point(0.0, 0.0))
        grid.remove("a")
        assert "a" not in grid
        assert grid.bucket_count() == 0
        grid.remove("a")  # idempotent

    def test_negative_coordinates(self):
        grid = UniformGridIndex(100.0)
        grid.update("neg", Point(-50.0, -50.0))
        assert [i for _, i in grid.query_circle(Point(0.0, 0.0), 100.0)] == ["neg"]

    def test_query_negative_radius(self):
        grid = UniformGridIndex(100.0)
        with pytest.raises(ValueError):
            grid.query_circle(Point(0.0, 0.0), -1.0)

    def test_occupancy_stats(self):
        grid = UniformGridIndex(100.0)
        for i in range(5):
            grid.update(f"d{i}", Point(10.0 * i, 0.0))
        stats = grid.occupancy_stats()
        assert stats["items"] == 5
        assert stats["max_bucket"] == 5


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_devices=st.integers(min_value=0, max_value=120),
    cell_size=st.sampled_from([120.0, 500.0, 1500.0]),
    radius=st.floats(min_value=0.0, max_value=4000.0),
)
def test_grid_equals_scan_on_random_fleets(seed, n_devices, cell_size, radius):
    """Indexed devices_within ≡ brute-force scan, order included."""
    rng = random.Random(seed)
    registry = _registry(cell_size)
    for i in range(n_devices):
        registry.attach_device(
            _Dot(
                f"d{i}",
                Point(rng.uniform(-500.0, 3500.0), rng.uniform(-500.0, 3500.0)),
            )
        )
    center = Point(rng.uniform(0.0, 3000.0), rng.uniform(0.0, 3000.0))
    indexed = registry.devices_within(center, radius)
    scanned = registry.devices_within_scan(center, radius)
    assert indexed == scanned
    assert registry.candidate_count_within(center, radius) >= len(indexed)


class TestRegistryIncrementalRefresh:
    def test_memoised_per_instant_with_clock(self):
        sim = Simulator(seed=3)
        registry = _registry(clock=sim)
        registry.attach_device(_Dot("a", Point(100.0, 100.0)))
        registry.devices_within(Point(0.0, 0.0), 500.0)
        before = registry.perf.probe("registry.refresh_positions").calls
        registry.devices_within(Point(0.0, 0.0), 500.0)
        registry.devices_within(Point(0.0, 0.0), 900.0)
        assert registry.perf.probe("registry.refresh_positions").calls == before
        assert registry.perf.probe("registry.refresh_positions.memo_hit").calls >= 2

    def test_paused_devices_skip_position_reads(self):
        sim = Simulator(seed=3)
        registry = _registry(clock=sim)
        # StaticMobility promises the position never changes, so after
        # the first observation refreshes touch zero devices.
        for i in range(10):
            registry.attach_device(
                make_device(sim, f"d{i}", position=Point(100.0 * i, 50.0))
            )
        sim.clock.advance_to(100.0)
        registry.refresh_positions()
        probe = registry.perf.probe("registry.refresh_positions")
        assert probe.calls == 1
        assert probe.items == 0

    def test_devices_on_tower_tracks_attachment(self):
        registry = TowerRegistry(
            [
                ENodeB("west", Point(0.0, 0.0)),
                ENodeB("east", Point(2000.0, 0.0)),
            ]
        )
        walker = _Dot("w", Point(100.0, 0.0))
        registry.attach_device(walker)
        assert registry.devices_on_tower("west") == ["w"]
        assert registry.devices_on_tower("east") == []
        walker._position = Point(1900.0, 0.0)
        walker.mobility = StaticMobility(walker._position)
        registry.refresh_attachments()
        assert registry.devices_on_tower("west") == []
        assert registry.devices_on_tower("east") == ["w"]
        registry.detach_device("w")
        assert registry.devices_on_tower("east") == []
        with pytest.raises(KeyError):
            registry.devices_on_tower("north")

    def test_version_counts_membership_and_topology(self):
        registry = _registry()
        v0 = registry.version
        registry.attach_device(_Dot("a", Point(100.0, 100.0)))
        assert registry.version > v0
        v1 = registry.version
        registry.fail_tower(registry.towers[0].tower_id)
        assert registry.version > v1
        v2 = registry.version
        registry.detach_device("a")
        assert registry.version > v2

    def test_attachment_matches_nearest_after_mobility(self):
        """Cell-cached attachment ≡ exact nearest-tower, under walking."""
        sim = Simulator(seed=11)
        campus = default_campus()
        registry = TowerRegistry(
            grid_towers(campus.width_m, campus.height_m, rows=3, cols=3),
            clock=sim,
        )
        devices = build_population(sim, campus, PopulationConfig(size=30))
        for device in devices:
            registry.attach_device(device)
        for t in (600.0, 1200.0, 2400.0):
            sim.clock.advance_to(t)
            registry.refresh_attachments()
            for device in devices:
                expected = registry.nearest_tower(device.position()).tower_id
                assert registry.serving_tower(device.device_id).tower_id == expected


def _run_campaign(seed: int, use_spatial_index: bool):
    from repro.faults import reset_global_ids

    reset_global_ids()
    sim = Simulator(seed=seed)
    campus = default_campus()
    registry = TowerRegistry(
        grid_towers(campus.width_m, campus.height_m, rows=3, cols=3),
        use_spatial_index=use_spatial_index,
    )
    network = CellularNetwork(sim)
    devices = build_population(sim, campus, PopulationConfig(size=40))
    server = SenseAidServer(
        sim, registry, network, SenseAidConfig(mode=ServerMode.COMPLETE)
    )
    for device in devices:
        SenseAidClient(sim, device, server, network).register()
    app = CrowdsensingAppServer(server, "equiv")
    for site in STUDY_SITES[:2]:
        app.task(
            SensorType.BAROMETER,
            campus.site(site).position,
            area_radius_m=900.0,
            spatial_density=3,
            sampling_period_s=300.0,
            sampling_duration_s=1800.0,
        )
    sim.run(until=1900.0)
    server.shutdown()
    return server


def test_selection_log_bit_identical_with_and_without_index():
    """The tentpole determinism gate: indexing must not change one bit
    of the scheduling outcome under the same seed."""
    indexed = _run_campaign(29, use_spatial_index=True)
    scanned = _run_campaign(29, use_spatial_index=False)
    assert indexed.selection_log == scanned.selection_log
    assert indexed.stats == scanned.stats


def test_random_waypoint_position_valid_until():
    rng = random.Random(5)
    mobility = RandomWaypointMobility(
        Point(0.0, 0.0), [Point(500.0, 0.0), Point(0.0, 700.0)], rng
    )
    # The itinerary starts with a pause at home: the validity window is
    # in the future and the position really is constant across it.
    until = mobility.position_valid_until(0.0)
    assert until > 0.0
    p0 = mobility.position_at(0.0)
    assert mobility.position_at(until * 0.5) == p0
    # Mid-walk the model promises nothing.
    t_walk = until + 1.0
    assert mobility.position_valid_until(t_walk) == t_walk
