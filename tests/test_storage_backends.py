"""Tests for the pluggable storage layer: backend conformance, the
``REPRO_DATASTORE`` factory, datastore write-through/hydration, and
the ISSUE's edge cases (delete-then-reinsert, duplicate-upload
idempotency across checkpoint/restore, selector iteration order)."""

from __future__ import annotations

import os

import pytest

from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork, DeliveryReceipt
from repro.cellular.packets import Message, MessageKind
from repro.clientlib.client import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.datastores import (
    DeviceDatastore,
    DeviceRecord,
    TaskDatastore,
    record_from_dict,
    record_to_dict,
)
from repro.core.server import SenseAidServer
from repro.core.wal import DurableLog
from repro.devices.sensors import SensorType
from repro.sim.engine import Simulator
from repro.storage import (
    DATASTORE_DIR_ENV,
    DATASTORE_ENV,
    MemoryBackend,
    SqliteBackend,
    check_backend_conformance,
    default_spec,
    resolve_backend,
)
from tests.conftest import make_device
from tests.test_core_server import CENTER, make_setup, make_spec


def _memory_factory():
    return MemoryBackend()


def _sqlite_factory(tmp_path, counter=[0]):
    counter[0] += 1
    return SqliteBackend(str(tmp_path / f"conf-{counter[0]}.sqlite3"))


BACKEND_PARAMS = ["memory", "memory+dir", "sqlite"]


@pytest.fixture(params=BACKEND_PARAMS)
def backend_factory(request, tmp_path):
    """A zero-arg factory producing fresh, independent backends."""
    if request.param == "memory":
        return _memory_factory
    if request.param == "memory+dir":
        return lambda: MemoryBackend(directory=str(tmp_path / "spill"))
    return lambda: _sqlite_factory(tmp_path)


@pytest.fixture(params=BACKEND_PARAMS)
def backend(request, tmp_path):
    if request.param == "memory":
        return MemoryBackend()
    if request.param == "memory+dir":
        return MemoryBackend(directory=str(tmp_path / "spill"))
    return SqliteBackend(str(tmp_path / "store.sqlite3"))


class TestConformance:
    def test_backend_passes_conformance_kit(self, backend_factory):
        check_backend_conformance(backend_factory)


class TestFactory:
    def test_default_is_memory(self, monkeypatch):
        monkeypatch.delenv(DATASTORE_ENV, raising=False)
        assert default_spec() == "memory"
        assert resolve_backend().name == "memory"

    def test_env_selects_sqlite(self, monkeypatch, tmp_path):
        monkeypatch.setenv(DATASTORE_ENV, "sqlite")
        monkeypatch.setenv(DATASTORE_DIR_ENV, str(tmp_path))
        backend = resolve_backend()
        assert backend.name == "sqlite"
        assert backend.path.startswith(str(tmp_path))

    def test_each_resolution_is_independent(self, monkeypatch, tmp_path):
        monkeypatch.setenv(DATASTORE_ENV, "sqlite")
        monkeypatch.setenv(DATASTORE_DIR_ENV, str(tmp_path))
        a, b = resolve_backend(), resolve_backend()
        assert a.path != b.path
        a.put_doc("ns", "k", {"v": 1})
        assert b.get_doc("ns", "k") is None

    def test_explicit_sqlite_path(self, tmp_path):
        path = str(tmp_path / "pinned.sqlite3")
        backend = resolve_backend(f"sqlite:{path}")
        assert backend.path == path

    def test_unknown_spec_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(DATASTORE_ENV, "redis")
        with pytest.raises(ValueError, match="redis"):
            resolve_backend()
        with pytest.raises(ValueError):
            resolve_backend("sqlite:")


def _record(device_id: str, **overrides) -> DeviceRecord:
    defaults = dict(
        device_id=device_id,
        imei_hash=f"hash-{device_id}",
        device_model="pixel",
        energy_budget_j=50.0,
        critical_battery_pct=20.0,
        sensors=frozenset({SensorType.BAROMETER}),
    )
    defaults.update(overrides)
    return DeviceRecord(**defaults)


class TestDeviceDatastoreOnBackend:
    def test_write_through_and_hydration(self, backend):
        store = DeviceDatastore(backend=backend)
        store.register(_record("d0", battery_pct=73.0))
        store.register(_record("d1"))
        # A second datastore on the same backend sees the same world.
        rehydrated = DeviceDatastore(backend=backend)
        assert rehydrated.device_ids() == ["d0", "d1"]
        assert rehydrated.record("d0").battery_pct == 73.0

    def test_flush_captures_attribute_mutations(self, backend):
        store = DeviceDatastore(backend=backend)
        store.register(_record("d0"))
        store.record("d0").times_selected = 7
        # Mutation bypassed the datastore API: visible only after flush.
        assert backend.get_doc("devices", "d0")["times_selected"] == 0
        store.flush()
        assert backend.get_doc("devices", "d0")["times_selected"] == 7
        assert DeviceDatastore(backend=backend).record("d0").times_selected == 7

    def test_delete_then_reinsert_same_id(self, backend):
        """A device id freed by deregister is fully reusable, and the
        reinserted record does not inherit any old state."""
        store = DeviceDatastore(backend=backend)
        store.register(_record("d0", battery_pct=10.0))
        store.record("d0").times_selected = 9
        store.flush()
        store.deregister("d0")
        assert not backend.has_doc("devices", "d0")
        store.register(_record("d0", battery_pct=95.0))
        assert store.record("d0").times_selected == 0
        assert backend.get_doc("devices", "d0")["battery_pct"] == 95.0
        rehydrated = DeviceDatastore(backend=backend)
        assert rehydrated.record("d0").battery_pct == 95.0
        assert rehydrated.record("d0").times_selected == 0

    def test_fresh_clears_namespace(self, backend):
        store = DeviceDatastore(backend=backend)
        store.register(_record("d0"))
        fresh = DeviceDatastore(backend=backend, fresh=True)
        assert len(fresh) == 0
        assert backend.doc_count("devices") == 0

    def test_iteration_order_is_sorted_and_stable(self, backend):
        """The selector ranks ``records()``; insertion order must never
        leak into it — both the live store and a rehydrated one
        iterate in sorted device-id order."""
        store = DeviceDatastore(backend=backend)
        for device_id in ["d7", "d0", "d12", "d3"]:
            store.register(_record(device_id))
        expected = sorted(["d7", "d0", "d12", "d3"])
        assert [r.device_id for r in store.records()] == expected
        assert store.device_ids() == expected
        rehydrated = DeviceDatastore(backend=backend)
        assert [r.device_id for r in rehydrated.records()] == expected

    def test_record_codec_round_trips(self):
        record = _record("d0", battery_pct=42.5, reliability=0.75)
        record.missed_deliveries = 2
        assert record_from_dict(record_to_dict(record)) == record


class TestTaskDatastoreOnBackend:
    def test_write_through_and_hydration(self, backend):
        store = TaskDatastore(backend=backend)
        spec = make_spec(task_id=3)
        store.add(spec)
        rehydrated = TaskDatastore(backend=backend)
        assert rehydrated.get(3) == spec

    def test_numeric_order_survives_key_encoding(self, backend):
        """Task ids are zero-padded into backend keys so key order is
        numeric order — id 10 must sort after id 9, not before id 2."""
        store = TaskDatastore(backend=backend)
        for task_id in [10, 2, 9, 1]:
            store.add(make_spec(task_id=task_id))
        assert [t.task_id for t in store.all_tasks()] == [1, 2, 9, 10]
        rehydrated = TaskDatastore(backend=backend)
        assert [t.task_id for t in rehydrated.all_tasks()] == [1, 2, 9, 10]

    def test_remove_deletes_from_backend(self, backend):
        store = TaskDatastore(backend=backend)
        store.add(make_spec(task_id=5))
        store.remove(5)
        assert backend.doc_count("tasks") == 0
        assert len(TaskDatastore(backend=backend)) == 0


def _run_campaign(sim, server, until=700.0):
    server.submit_task(make_spec(sampling_duration_s=600.0), lambda p: None)
    sim.run(until=until)


class TestServerOnBackends:
    @pytest.mark.parametrize("spec", ["memory", "sqlite"])
    def test_selection_log_mirrored_to_backend(
        self, spec, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(DATASTORE_ENV, spec)
        monkeypatch.setenv(DATASTORE_DIR_ENV, str(tmp_path))
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=4)
        _run_campaign(sim, server)
        assert server.storage.name == spec
        stored = list(server.storage.scan_log(server.SELECTION_LOG_NS))
        assert len(stored) == len(server.selection_log) > 0
        for doc, event in zip(stored, server.selection_log):
            assert doc["request_id"] == event.request_id
            assert tuple(doc["selected"]) == event.selected

    @pytest.mark.parametrize("spec", ["memory", "sqlite"])
    def test_shutdown_flushes_but_keeps_backend_readable(
        self, spec, monkeypatch, tmp_path
    ):
        monkeypatch.setenv(DATASTORE_ENV, spec)
        monkeypatch.setenv(DATASTORE_DIR_ENV, str(tmp_path))
        sim = Simulator()
        server, _, _, _ = make_setup(sim, n_devices=4)
        _run_campaign(sim, server)
        server.shutdown()
        # Post-shutdown the backend serves the flushed working set.
        doc = server.storage.get_doc("devices", "d0")
        assert doc["times_selected"] == server.devices.record("d0").times_selected

    @pytest.mark.parametrize("spec_name", ["memory", "sqlite"])
    def test_duplicate_upload_idempotent_across_checkpoint_restore(
        self, spec_name, tmp_path
    ):
        """Replaying an already-accepted upload id — after a WAL
        checkpoint + cold restart — must not double-count data.

        The burned-idempotency-key set is part of durable state, so a
        client retrying a delivery into the restarted incarnation gets
        the duplicate verdict, on every backend.
        """
        spec = (
            "memory"
            if spec_name == "memory"
            else f"sqlite:{tmp_path}/idem.sqlite3"
        )
        storage = resolve_backend(spec)
        sim = Simulator()
        registry = TowerRegistry(
            [ENodeB("t0", CENTER, coverage_radius_m=5000.0)]
        )
        network = CellularNetwork(sim)
        server = SenseAidServer(
            sim,
            registry,
            network,
            SenseAidConfig(mode=ServerMode.COMPLETE),
            wal=DurableLog(str(tmp_path / f"wal-{spec_name}")),
            storage=storage,
        )
        device = make_device(sim, "d0", position=CENTER)
        client = SenseAidClient(sim, device, server, network)
        client.register()
        data = []
        server.submit_task(
            make_spec(spatial_density=1, sampling_duration_s=600.0),
            data.append,
        )
        sim.run(until=700.0)
        assert len(data) == 1  # 1 sampling instant × density 1
        request_id = server.selection_log[-1].request_id
        upload_id = f"d0:{request_id}"
        assert upload_id in server._seen_upload_ids
        before = server.stats.duplicate_uploads
        points_before = server.stats.data_points
        # Checkpoint, kill, recover — then replay the upload id.
        server._wal.checkpoint(server)
        server.restart()
        assert upload_id in server._seen_upload_ids
        replay = Message(
            kind=MessageKind.SENSOR_DATA,
            sender="d0",
            size_bytes=120,
            payload={
                "device_id": "d0",
                "request_id": request_id,
                "upload_id": upload_id,
                "epoch": server.epoch,
                "value": 1000.0,
            },
        )
        receipt = DeliveryReceipt(
            message_id=replay.message_id,
            radio_complete_at=sim.now,
            delivered_at=sim.now,
            path="path2",
        )
        ack = server.receive_sensed_data(replay, receipt)
        assert ack.accepted
        assert ack.reason == "duplicate"
        assert server.stats.duplicate_uploads == before + 1
        assert server.stats.data_points == points_before
        assert len(data) == 1  # no re-delivery to the application


class TestMemoryCheckpointSpill:
    def test_spilled_checkpoint_survives_process_swap(self, tmp_path):
        spill = str(tmp_path / "spill")
        first = MemoryBackend(directory=spill)
        first.put_doc("devices", "d0", {"battery": 80})
        first.append_log("readings", {"v": 1})
        first.checkpoint("epoch-1")
        # A brand-new backend (fresh process) picks the snapshot up.
        second = MemoryBackend(directory=spill)
        assert second.checkpoint_tags() == ["epoch-1"]
        assert second.restore("epoch-1")
        assert second.get_doc("devices", "d0") == {"battery": 80}

    def test_truncated_spill_is_ignored(self, tmp_path):
        spill = str(tmp_path / "spill")
        backend = MemoryBackend(directory=spill)
        backend.checkpoint("good")
        path = os.path.join(spill, "checkpoint-bad.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write('{"schema": 1, "tag": "bad", "docs"')  # torn write
        reloaded = MemoryBackend(directory=spill)
        assert reloaded.checkpoint_tags() == ["good"]
