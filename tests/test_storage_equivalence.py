"""Property-based proof that the storage backends are interchangeable.

Each example draws a random campaign (devices, tasks, densities,
periods, an optional mid-run kill-and-recover point) and runs it twice
— once on the in-memory backend, once on sqlite — then asserts the two
worlds are **bit-identical**: selection logs (live and as stored),
every stored reading, the device datastore contents, server stats, and
the derived analysis outputs.  Floats are compared exactly, not
approximately: both backends must perform the same arithmetic in the
same order, or they are not the same system.
"""

from __future__ import annotations

import math
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork
from repro.cellular.packets import reset_message_ids
from repro.clientlib.client import SenseAidClient
from repro.core.config import SenseAidConfig, ServerMode
from repro.core.server import SenseAidServer, selection_event_to_dict
from repro.core.tasks import reset_task_ids
from repro.core.wal import DurableLog
from repro.environment.geometry import Point
from repro.serverlib.appserver import CrowdsensingAppServer
from repro.sim.engine import Simulator
from repro.storage import MemoryBackend, SqliteBackend
from repro.devices.sensors import SensorType
from tests.conftest import make_device

CENTER = Point(500.0, 500.0)

campaign_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=10_000),
        "n_devices": st.integers(min_value=2, max_value=6),
        "n_tasks": st.integers(min_value=1, max_value=3),
        "density": st.integers(min_value=1, max_value=3),
        "period_s": st.sampled_from([120.0, 300.0, 600.0]),
        "ticks": st.integers(min_value=1, max_value=3),
        "spread_m": st.floats(min_value=0.0, max_value=1200.0),
        "restart_tick": st.one_of(
            st.none(), st.floats(min_value=0.3, max_value=0.9)
        ),
    }
)


def _make_backend(kind: str):
    if kind == "memory":
        return MemoryBackend()
    root = tempfile.mkdtemp(prefix="repro-equiv-")
    return SqliteBackend(f"{root}/campaign.sqlite3")


def run_campaign(params, backend_kind: str) -> dict:
    """Run one campaign on a backend; return its full fingerprint."""
    reset_task_ids()
    reset_message_ids()
    storage = _make_backend(backend_kind)
    wal = None
    if params["restart_tick"] is not None:
        wal = DurableLog(tempfile.mkdtemp(prefix="repro-equiv-wal-"))
    sim = Simulator(seed=params["seed"])
    registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=10_000.0)])
    network = CellularNetwork(sim)
    server = SenseAidServer(
        sim,
        registry,
        network,
        SenseAidConfig(mode=ServerMode.COMPLETE),
        wal=wal,
        storage=storage,
    )
    cas = CrowdsensingAppServer(server, "equiv")
    rng = sim.rng.stream("scenario")
    for i in range(params["n_devices"]):
        offset = params["spread_m"] * rng.random()
        angle = rng.random() * 6.283185
        position = Point(
            CENTER.x + offset * math.cos(angle),
            CENTER.y + offset * math.sin(angle),
        )
        device = make_device(sim, f"d{i}", position=position)
        SenseAidClient(sim, device, server, network).register()
    duration = params["period_s"] * params["ticks"]
    for _ in range(params["n_tasks"]):
        cas.task(
            SensorType.BAROMETER,
            CENTER,
            2000.0,
            params["density"],
            sampling_period_s=params["period_s"],
            sampling_duration_s=duration,
        )
    if params["restart_tick"] is not None:
        # Kill-and-recover mid-campaign: checkpoint, cold restart,
        # WAL replay — at the same instant on both backends.
        def kill_and_recover():
            wal.checkpoint(server)
            server.restart(
                data_callbacks={cas.name: cas.receive_sensed_data}
            )

        sim.schedule_at(duration * params["restart_tick"], kill_and_recover)
    sim.run(until=duration + 120.0)
    server.shutdown()
    return fingerprint(server, cas)


def fingerprint(server: SenseAidServer, cas: CrowdsensingAppServer) -> dict:
    """Everything two equivalent worlds must agree on, bit for bit."""
    storage = server.storage
    device_docs = {
        key: storage.get_doc("devices", key)
        for key in storage.doc_keys("devices")
    }
    task_docs = {
        key: storage.get_doc("tasks", key)
        for key in storage.doc_keys("tasks")
    }
    return {
        "selection_log_live": [
            selection_event_to_dict(e) for e in server.selection_log
        ],
        "selection_log_stored": list(
            storage.scan_log(server.SELECTION_LOG_NS)
        ),
        "readings_stored": list(storage.scan_log(cas.readings_ns)),
        "device_docs": device_docs,
        "task_docs": task_docs,
        "stats": vars(server.stats).copy(),
        "epoch": server.epoch,
        "selections_per_device": server.selections_per_device(),
        "mean_value": cas.mean_value(),
        "per_task_means": {
            task_id: cas.mean_value(task_id) for task_id in cas.task_ids
        },
        "distinct_devices": cas.distinct_devices(),
        "reading_count": cas.reading_count(),
    }


@settings(max_examples=15, deadline=None)
@given(campaign_strategy)
def test_backends_are_bit_identical(params):
    memory_world = run_campaign(params, "memory")
    sqlite_world = run_campaign(params, "sqlite")
    # Key-by-key comparison so a failure names the diverging facet.
    assert memory_world.keys() == sqlite_world.keys()
    for facet in memory_world:
        assert memory_world[facet] == sqlite_world[facet], facet


@settings(max_examples=5, deadline=None)
@given(campaign_strategy)
def test_memory_backend_matches_itself(params):
    """Determinism control: the comparison machinery itself is sound
    (a flaky campaign would false-positive the cross-backend test)."""
    first = run_campaign(params, "memory")
    second = run_campaign(params, "memory")
    assert first == second
