"""Tests for staged tails (UMTS DCH→FACH) and stage-exact accounting."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cellular.packets import TrafficCategory
from repro.cellular.power import (
    LTE_POWER_PROFILE,
    THREEG_POWER_PROFILE,
    RadioPowerProfile,
    TailStage,
)
from repro.cellular.rrc import RadioModem, RRCState, TailPolicy
from repro.sim.engine import Simulator

P3G = THREEG_POWER_PROFILE


class TestTailStageValidation:
    def test_invalid_stage(self):
        with pytest.raises(ValueError):
            TailStage("x", duration_s=0.0, power_mw=100.0)

    def test_stage_durations_must_sum_to_tail(self):
        with pytest.raises(ValueError):
            dataclasses.replace(
                P3G,
                tail_stages=(TailStage("only", duration_s=1.0, power_mw=558.0),),
            )

    def test_stage_energy_must_match_flat_average(self):
        with pytest.raises(ValueError):
            dataclasses.replace(
                P3G,
                tail_stages=(
                    TailStage("a", duration_s=3.0, power_mw=100.0),
                    TailStage("b", duration_s=5.0, power_mw=100.0),
                ),
            )

    def test_builtin_3g_profile_is_consistent(self):
        staged = sum(s.power_mw * s.duration_s for s in P3G.tail_stages)
        assert staged == pytest.approx(P3G.tail_mw * P3G.tail_s)


class TestTailEnergyBetween:
    def test_flat_profile_linear(self):
        p = LTE_POWER_PROFILE
        assert p.tail_energy_between(0.0, 2.0) == pytest.approx(
            (p.tail_mw - p.idle_mw) / 1000.0 * 2.0
        )

    def test_full_range_matches_flat_total(self):
        assert P3G.tail_energy_between(0.0, P3G.tail_s) == pytest.approx(
            P3G.tail_energy_j()
        )

    def test_dch_segment_costs_more_than_fach_segment(self):
        dch = P3G.tail_energy_between(0.0, 2.0)
        fach = P3G.tail_energy_between(5.0, 7.0)
        assert dch > fach

    def test_cross_stage_segment(self):
        # [2, 4] spans 1 s of DCH (800 mW) + 1 s of FACH (412.8 mW).
        expected = (800.0 - 10.0) / 1000.0 + (412.8 - 10.0) / 1000.0
        assert P3G.tail_energy_between(2.0, 4.0) == pytest.approx(expected)

    def test_clamping(self):
        assert P3G.tail_energy_between(-5.0, 100.0) == pytest.approx(
            P3G.tail_energy_j()
        )
        assert P3G.tail_energy_between(7.0, 3.0) == 0.0

    def test_tail_power_at(self):
        assert P3G.tail_power_at(1.0) == 800.0
        assert P3G.tail_power_at(6.0) == 412.8
        assert P3G.tail_power_at(100.0) == 412.8
        assert LTE_POWER_PROFILE.tail_power_at(5.0) == LTE_POWER_PROFILE.tail_mw


class TestStagedModemAccounting:
    def _modem_in_tail(self, policy, *, run_until):
        sim = Simulator()
        modem = RadioModem(sim, P3G, "m", policy)
        charges = []
        modem.add_energy_listener(lambda cat, j, r: charges.append((cat, j, r)))
        modem.transmit(10_000, TrafficCategory.BACKGROUND)
        sim.run(until=run_until)
        assert modem.state is RRCState.TAIL
        return sim, modem, charges

    def test_no_reset_upload_in_dch_phase_is_cheap(self):
        """During the high-power DCH tail the displaced tail energy
        nearly cancels the transfer's cost."""
        sim, modem, charges = self._modem_in_tail(
            TailPolicy.NO_RESET, run_until=3.5  # ~1.2 s into the tail: DCH
        )
        charges.clear()
        modem.transmit(600, TrafficCategory.CROWDSENSING)
        sim.run(until=30.0)
        cost = sum(j for _, j, _ in charges)
        transfer = P3G.transfer_time(600)
        expected = (P3G.active_mw - 800.0) / 1000.0 * transfer  # = 0 for 3G
        assert cost == pytest.approx(expected, abs=1e-9)

    def test_no_reset_upload_in_fach_phase_costs_more(self):
        """In the low-power FACH phase the same upload displaces cheap
        FACH time, so its marginal cost is higher than in DCH."""
        sim, modem, charges = self._modem_in_tail(
            TailPolicy.NO_RESET, run_until=8.0  # ~5.7 s into the tail: FACH
        )
        charges.clear()
        modem.transmit(600, TrafficCategory.CROWDSENSING)
        sim.run(until=30.0)
        cost = sum(j for _, j, _ in charges)
        transfer = P3G.transfer_time(600)
        expected = (P3G.active_mw - 412.8) / 1000.0 * transfer
        assert cost == pytest.approx(expected, rel=1e-6)

    def test_reset_during_fach_recharges_the_dch_phase(self):
        """Resetting from deep in the tail is expensive on UMTS: the
        radio climbs back through the full DCH tail."""
        sim, modem, charges = self._modem_in_tail(
            TailPolicy.RESET, run_until=8.0
        )
        offset = modem._tail_offset(sim.now)
        charges.clear()
        modem.transmit(600, TrafficCategory.CROWDSENSING)
        sim.run(until=40.0)
        cost = sum(j for _, j, _ in charges)
        transfer = P3G.transfer_time(600)
        expected = (
            P3G.active_energy_j(transfer)
            + P3G.tail_energy_j()
            - P3G.tail_energy_between(offset, P3G.tail_s)
        )
        assert cost == pytest.approx(expected, rel=1e-6)

    def test_lte_flat_behaviour_unchanged(self):
        """The staged machinery must reduce exactly to the old flat
        formulas for LTE (single implicit stage)."""
        sim = Simulator()
        modem = RadioModem(sim, LTE_POWER_PROFILE, "m", TailPolicy.NO_RESET)
        charges = []
        modem.add_energy_listener(lambda cat, j, r: charges.append(j))
        modem.transmit(10_000, TrafficCategory.BACKGROUND)
        sim.run(until=5.0)
        charges.clear()
        modem.transmit(600, TrafficCategory.CROWDSENSING)
        sim.run(until=30.0)
        transfer = LTE_POWER_PROFILE.transfer_time(600)
        assert sum(charges) == pytest.approx(
            LTE_POWER_PROFILE.active_energy_j(transfer, over_tail=True)
        )

    def test_resumed_tail_offset_tracks_timer(self):
        """After a no-reset transfer the tail resumes deeper in, not at
        the start: the offset includes the transfer time."""
        sim = Simulator()
        modem = RadioModem(sim, P3G, "m", TailPolicy.NO_RESET)
        modem.transmit(10_000, TrafficCategory.BACKGROUND)
        sim.run(until=4.0)
        offset_before = modem._tail_offset(sim.now)
        modem.transmit(600, TrafficCategory.CROWDSENSING)
        transfer = P3G.transfer_time(600)
        sim.run(until=4.0 + transfer + 0.5)
        assert modem.state is RRCState.TAIL
        assert modem._tail_offset(sim.now) == pytest.approx(
            offset_before + transfer + 0.5
        )
