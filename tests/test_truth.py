"""Tests for CRH truth discovery."""

from __future__ import annotations

import random

import pytest

from repro.analysis.truth import (
    TruthDiscoveryResult,
    discover_truth,
    reliability_scores,
)


def honest_and_liar_claims(n_items=10, n_honest=5, lie_offset=25.0, seed=3):
    rng = random.Random(seed)
    true_values = {f"item{i}": 1013.0 + rng.uniform(-3, 3) for i in range(n_items)}
    claims = {}
    for s in range(n_honest):
        claims[f"honest{s}"] = {
            item: value + rng.gauss(0.0, 0.2) for item, value in true_values.items()
        }
    claims["liar"] = {item: value + lie_offset for item, value in true_values.items()}
    return true_values, claims


class TestDiscovery:
    def test_liar_gets_low_weight(self):
        _, claims = honest_and_liar_claims()
        result = discover_truth(claims)
        normalized = result.normalized_weights()
        assert normalized["liar"] < min(
            v for k, v in normalized.items() if k != "liar"
        )
        assert normalized["liar"] < 0.05

    def test_truths_track_honest_sources(self):
        true_values, claims = honest_and_liar_claims()
        result = discover_truth(claims)
        for item, truth in result.truths.items():
            assert truth == pytest.approx(true_values[item], abs=0.5)

    def test_truth_beats_naive_mean(self):
        true_values, claims = honest_and_liar_claims()
        result = discover_truth(claims)
        for item in true_values:
            naive = sum(c[item] for c in claims.values()) / len(claims)
            robust_error = abs(result.truths[item] - true_values[item])
            naive_error = abs(naive - true_values[item])
            assert robust_error < naive_error

    def test_all_honest_no_source_dominates(self):
        """Without a liar, no source should dominate or be written off
        (CRH still spreads weights by residual noise, so exact equality
        is not expected)."""
        _, claims = honest_and_liar_claims(n_honest=4)
        del claims["liar"]
        result = discover_truth(claims)
        normalized = result.normalized_weights()
        assert max(normalized.values()) < 0.6
        assert min(normalized.values()) > 0.01

    def test_partial_claims_supported(self):
        claims = {
            "a": {"x": 10.0, "y": 20.0},
            "b": {"x": 10.2},
            "c": {"y": 19.8, "x": 9.9},
        }
        result = discover_truth(claims)
        assert set(result.truths) == {"x", "y"}
        assert result.truths["x"] == pytest.approx(10.0, abs=0.3)

    def test_single_source(self):
        result = discover_truth({"solo": {"x": 5.0}})
        assert result.truths["x"] == 5.0

    def test_converges(self):
        _, claims = honest_and_liar_claims()
        result = discover_truth(claims, max_iterations=100)
        assert result.iterations < 100

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            discover_truth({})
        with pytest.raises(ValueError):
            discover_truth({"a": {}})

    def test_deterministic(self):
        _, claims = honest_and_liar_claims()
        a = discover_truth(claims)
        b = discover_truth(claims)
        assert a.truths == b.truths
        assert a.weights == b.weights


class TestReliabilityScores:
    def test_scores_in_unit_interval(self):
        _, claims = honest_and_liar_claims()
        scores = reliability_scores(discover_truth(claims))
        assert all(0.0 <= s <= 1.0 for s in scores.values())
        assert max(scores.values()) == 1.0

    def test_liar_scored_low(self):
        _, claims = honest_and_liar_claims()
        scores = reliability_scores(discover_truth(claims))
        assert scores["liar"] < 0.1

    def test_empty(self):
        assert reliability_scores(
            TruthDiscoveryResult(truths={}, weights={}, iterations=0)
        ) == {}
