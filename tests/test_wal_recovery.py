"""Tests for the durability subsystem: the write-ahead log, crash-safe
checkpoints, cold-restart recovery, and server incarnation epochs."""

from __future__ import annotations

import json
import os

import pytest

from repro.cellular.enodeb import ENodeB, TowerRegistry
from repro.cellular.network import CellularNetwork, DeliveryReceipt
from repro.cellular.packets import Message, MessageKind
from repro.clientlib.client import SenseAidClient
from repro.core.config import RetryPolicy, SenseAidConfig, ServerMode
from repro.core.persistence import (
    atomic_write_json,
    checkpoint_server,
    load_checkpoint,
    save_checkpoint,
    stats_from_dict,
)
from repro.core.server import SenseAidServer
from repro.core.wal import (
    CheckpointCorruptError,
    DurableLog,
    RecoveryViolation,
    WriteAheadLog,
    check_recovery_invariants,
    checkpoint_crc,
    durable_state,
)
from repro.faults import FaultInjector, FaultPlan
from repro.sim.engine import Simulator
from tests.conftest import make_device
from tests.test_core_server import CENTER, make_spec

RETRY = RetryPolicy(
    max_attempts=4,
    ack_timeout_s=20.0,
    backoff_base_s=10.0,
    backoff_multiplier=2.0,
    jitter_fraction=0.0,
    tail_wait_max_s=30.0,
)


def wal_setup(sim, wal_dir, n_devices=2, *, retry=RETRY, config=None, plan=None):
    """A one-tower deployment whose server journals to ``wal_dir``."""
    registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)])
    network = CellularNetwork(sim)
    server = SenseAidServer(
        sim,
        registry,
        network,
        config or SenseAidConfig(mode=ServerMode.COMPLETE, deadline_grace_s=60.0),
        wal=DurableLog(str(wal_dir)),
    )
    injector = None
    if plan is not None:
        injector = FaultInjector(sim, network, registry, server=server, plan=plan)
    clients = []
    for i in range(n_devices):
        device = make_device(sim, f"d{i}", position=CENTER)
        client = SenseAidClient(
            sim, device, server, network, retry_policy=retry
        )
        client.register()
        if injector is not None:
            injector.adopt_client(client)
        clients.append(client)
    return server, network, injector, clients


class TestWriteAheadLog:
    def test_append_and_read_back(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("register", device_id="d0")
        wal.append("assign", request_id="task1-r0", device_id="d0")
        entries = wal.entries()
        assert [e["kind"] for e in entries] == ["register", "assign"]
        assert [e["seq"] for e in entries] == [1, 2]

    def test_sequence_resumes_after_reopen(self, tmp_path):
        WriteAheadLog(str(tmp_path)).append("register", device_id="d0")
        reopened = WriteAheadLog(str(tmp_path))
        entry = reopened.append("deregister", device_id="d0")
        assert entry["seq"] == 2
        assert len(reopened.entries()) == 2

    def test_torn_tail_is_dropped(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("register", device_id="d0")
        wal.append("register", device_id="d1")
        with open(wal.log_path, "a", encoding="utf-8") as f:
            f.write('{"seq": 3, "kind": "regi')  # crash mid-append
        assert [e["seq"] for e in wal.entries()] == [1, 2]

    def test_nothing_after_a_torn_line_is_trusted(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("register", device_id="d0")
        with open(wal.log_path, "a", encoding="utf-8") as f:
            f.write('{"torn\n')
            f.write(json.dumps({"seq": 3, "kind": "register"}) + "\n")
        assert [e["seq"] for e in wal.entries()] == [1]

    def test_compact_installs_checkpoint_and_truncates(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append("register", device_id="d0")
        wal.compact({"version": 2, "marker": 7})
        assert wal.entries() == []
        assert wal.load_checkpoint()["marker"] == 7

    def test_unsupported_checkpoint_version_rejected(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        atomic_write_json(wal.checkpoint_path, {"version": 99})
        with pytest.raises(ValueError, match="version"):
            wal.load_checkpoint()

    def test_missing_files_mean_empty_log(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        assert wal.entries() == []
        assert wal.load_checkpoint() is None


class TestAtomicCheckpointWrites:
    def test_save_checkpoint_round_trips(self, tmp_path):
        sim = Simulator(seed=5)
        server, _, _, _ = wal_setup(sim, tmp_path / "wal")
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(server, path)
        snapshot = load_checkpoint(path)
        assert snapshot["version"] == 2
        assert {d["device_id"] for d in snapshot["devices"]} == {"d0", "d1"}
        assert not [
            name for name in os.listdir(str(tmp_path)) if name.endswith(".tmp")
        ]

    def test_failed_write_leaves_previous_file_intact(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        atomic_write_json(path, {"version": 2, "generation": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"version": 2, "bad": {1, 2}})
        assert load_checkpoint(path)["generation"] == 1
        assert not [
            name for name in os.listdir(str(tmp_path)) if name.endswith(".tmp")
        ]


class TestCheckpointV2:
    """Satellite: checkpoints carry stats, burned keys, and pending
    assignment bookkeeping, and they round-trip."""

    def _run_scenario(self, tmp_path, seed=11):
        sim = Simulator(seed=seed)
        server, network, _, clients = wal_setup(sim, tmp_path / "wal")
        collected = []
        server.submit_task(
            make_spec(spatial_density=2, sampling_duration_s=1800.0),
            collected.append,
        )
        sim.run(until=650.0)
        return sim, server, network, collected

    def test_checkpoint_carries_durable_accounting(self, tmp_path):
        _, server, _, _ = self._run_scenario(tmp_path)
        assert server.stats.data_points > 0
        snapshot = checkpoint_server(server)
        assert snapshot["version"] == 2
        assert snapshot["epoch"] == server.epoch
        assert stats_from_dict(snapshot["stats"]) == server.stats
        assert snapshot["seen_upload_ids"] == sorted(server._seen_upload_ids)
        by_id = {p["request_id"]: p for p in snapshot["pending"]}
        assert set(by_id) == set(server._tracking)
        for request_id, tracking in server._tracking.items():
            assert by_id[request_id]["assigned"] == sorted(tracking.assigned)
            assert by_id[request_id]["received"] == sorted(tracking.received)
            assert by_id[request_id]["satisfied"] == tracking.satisfied

    def test_restore_server_round_trips_new_fields(self, tmp_path):
        from repro.core.persistence import restore_server

        sim, server, network, collected = self._run_scenario(tmp_path)
        path = str(tmp_path / "ckpt.json")
        save_checkpoint(server, path)

        registry = TowerRegistry([ENodeB("t1", CENTER, coverage_radius_m=5000.0)])
        fresh = SenseAidServer(
            sim,
            registry,
            network,
            SenseAidConfig(mode=ServerMode.COMPLETE, deadline_grace_s=60.0),
        )
        resumed = restore_server(
            fresh, load_checkpoint(path), {"cas": lambda p: None}
        )
        assert resumed == 1
        assert fresh.epoch == server.epoch
        assert fresh.stats.data_points == server.stats.data_points
        assert fresh.stats.requests_satisfied == server.stats.requests_satisfied
        assert fresh._seen_upload_ids == server._seen_upload_ids
        assert set(fresh.devices.device_ids()) == set(server.devices.device_ids())
        for device_id in server.devices.device_ids():
            assert (
                fresh.devices.record(device_id).times_selected
                == server.devices.record(device_id).times_selected
            )
        # Pending bookkeeping with a live deadline came back too.
        live = {
            rid
            for rid, t in server._tracking.items()
            if t.request.deadline > sim.now
        }
        assert live and live <= set(fresh._tracking)
        for rid in live:
            assert fresh._tracking[rid].assigned == server._tracking[rid].assigned
            assert fresh._tracking[rid].received == server._tracking[rid].received
        fresh.shutdown()


def _sensor_data_message(payload):
    return Message(
        kind=MessageKind.SENSOR_DATA, sender=payload["device_id"], size_bytes=120,
        payload=payload,
    )


def _receipt(sim, message):
    return DeliveryReceipt(
        message_id=message.message_id,
        radio_complete_at=sim.now,
        delivered_at=sim.now,
        path="path2",
    )


class TestRestartRecovery:
    """Tentpole: checkpoint + WAL replay reaches the exact pre-crash
    durable state, and clients re-establish sessions via epoch resync."""

    def _crashed_scenario(self, tmp_path, *, crash_at=650.0, restart_at=700.0):
        sim = Simulator(seed=23)
        server, network, _, clients = wal_setup(sim, tmp_path / "wal")
        collected = []
        server.submit_task(
            make_spec(spatial_density=2, sampling_duration_s=1800.0),
            collected.append,
        )
        sim.run(until=crash_at)
        server.crash()
        sim.run(until=restart_at)
        return sim, server, clients, collected

    def test_restart_restores_exact_durable_state(self, tmp_path):
        sim, server, _, _ = self._crashed_scenario(tmp_path)
        pre = durable_state(server)
        assert pre["accepted_uploads"] > 0
        assert pre["assignments"]
        server.restart()
        post = durable_state(server)
        assert check_recovery_invariants(pre, post) == []
        assert server.epoch == 2

    def test_clients_resync_and_collection_resumes(self, tmp_path):
        sim, server, clients, collected = self._crashed_scenario(tmp_path)
        before = server.stats.data_points
        server.restart()
        for client in clients:
            assert client.stats.epoch_resyncs >= 1
            assert client._server_epoch == server.epoch
        sim.run(until=1400.0)
        assert server.stats.data_points > before
        assert all(p.task_id is not None for p in collected)

    def test_stale_epoch_upload_rejected(self, tmp_path):
        sim, server, _, _ = self._crashed_scenario(tmp_path)
        server.restart()
        before = server.stats.data_points
        message = _sensor_data_message(
            {
                "device_id": "d0",
                "request_id": "task999-r0",
                "value": 1013.0,
                "epoch": 1,  # previous incarnation
            }
        )
        ack = server.receive_sensed_data(message, _receipt(sim, message))
        assert ack is not None and not ack.accepted
        assert ack.reason == "stale_epoch"
        assert server.stats.stale_epoch_uploads == 1
        assert server.stats.data_points == before

    def test_burned_keys_stay_burned_across_restart(self, tmp_path):
        sim, server, _, _ = self._crashed_scenario(tmp_path)
        burned = sorted(server._seen_upload_ids)
        assert burned
        server.restart()
        assert set(burned) <= server._seen_upload_ids
        before = server.stats.data_points
        upload_id = burned[0]
        device_id, request_id = upload_id.split(":", 1)
        message = _sensor_data_message(
            {
                "device_id": device_id,
                "request_id": request_id,
                "upload_id": upload_id,
                "value": 1013.0,
                "epoch": server.epoch,
            }
        )
        ack = server.receive_sensed_data(message, _receipt(sim, message))
        assert ack is not None and ack.accepted and ack.reason == "duplicate"
        assert server.stats.data_points == before

    def test_midrun_compaction_preserves_recovery(self, tmp_path):
        sim = Simulator(seed=31)
        server, _, _, _ = wal_setup(sim, tmp_path / "wal")
        collected = []
        server.submit_task(
            make_spec(spatial_density=2, sampling_duration_s=1800.0),
            collected.append,
        )
        sim.run(until=300.0)
        server._wal.checkpoint(server)
        assert server._wal.wal.entries() == []  # log bounded
        sim.run(until=650.0)
        pre = durable_state(server)
        server.crash()
        sim.run(until=700.0)
        pre = durable_state(server)
        server.restart()
        assert check_recovery_invariants(pre, durable_state(server)) == []

    def test_repeated_crash_restart_cycles(self, tmp_path):
        sim = Simulator(seed=47)
        server, _, _, clients = wal_setup(sim, tmp_path / "wal")
        server.submit_task(
            make_spec(spatial_density=2, sampling_duration_s=3600.0),
            lambda p: None,
        )
        expected_epoch = 1
        for crash_at, restart_at in ((400.0, 450.0), (900.0, 930.0), (1500.0, 1600.0)):
            sim.run(until=crash_at)
            server.crash()
            sim.run(until=restart_at)
            pre = durable_state(server)
            server.restart()
            expected_epoch += 1
            assert check_recovery_invariants(pre, durable_state(server)) == []
            assert server.epoch == expected_epoch
        sim.run(until=2200.0)
        assert server.stats.data_points > 0

    def test_fault_plan_drives_crash_and_restart(self, tmp_path):
        sim = Simulator(seed=59)
        plan = FaultPlan().server_crash(650.0, restart_after=50.0)
        server, _, injector, clients = wal_setup(
            sim, tmp_path / "wal", plan=plan
        )
        server.submit_task(
            make_spec(spatial_density=2, sampling_duration_s=1800.0),
            lambda p: None,
        )
        sim.run(until=1400.0)
        assert injector.stats.server_crashes == 1
        assert injector.stats.server_restarts == 1
        assert server.epoch == 2
        assert all(c.stats.epoch_resyncs >= 1 for c in clients)
        assert server.stats.data_points > 0


class TestEpochSemantics:
    def test_warm_recover_keeps_epoch(self, tmp_path):
        sim = Simulator(seed=3)
        server, _, _, clients = wal_setup(sim, tmp_path / "wal")
        sim.run(until=100.0)
        server.crash()
        sim.run(until=150.0)
        server.recover()
        assert server.epoch == 1
        assert all(c.stats.epoch_resyncs == 0 for c in clients)

    def test_restart_without_wal_bumps_epoch_and_keeps_datastores(self):
        sim = Simulator(seed=7)
        registry = TowerRegistry([ENodeB("t0", CENTER, coverage_radius_m=5000.0)])
        network = CellularNetwork(sim)
        server = SenseAidServer(sim, registry, network)
        client = SenseAidClient(
            sim, make_device(sim, "d0", position=CENTER), server, network,
            retry_policy=RETRY,
        )
        client.register()
        server.restart()
        assert server.epoch == 2
        assert "d0" in server.devices  # datastore stands in for storage
        assert client.stats.epoch_resyncs == 1
        assert client._server_epoch == 2
        server.shutdown()

    def test_invariant_checker_flags_divergence(self):
        pre = {
            "epoch": 1,
            "devices": {"d0": {"times_selected": 3}},
            "tasks": [1],
            "burned_upload_ids": ["d0:task1-r0"],
            "accepted_uploads": 4,
            "requests_satisfied": 2,
            "assignments": {"task1-r1": {"assigned": ["d0"]}},
        }
        post = {
            "epoch": 3,  # skipped an incarnation
            "devices": {"d0": {"times_selected": 2}},  # lost a selection
            "tasks": [],
            "burned_upload_ids": [],  # resurrected key
            "accepted_uploads": 5,  # double count
            "requests_satisfied": 2,
            "assignments": {},
        }
        violations = check_recovery_invariants(pre, post)
        text = "\n".join(violations)
        assert "accepted uploads" in text
        assert "resurrected" in text
        assert "d0" in text
        assert "open tasks" in text
        assert "epoch" in text
        assert check_recovery_invariants(pre, dict(pre, epoch=2)) == []


class TestCheckpointCorruption:
    """Satellite: CRC-footed checkpoints and the previous-generation
    fallback path when the current checkpoint is damaged on disk."""

    def _two_generations(self, tmp_path):
        """A WAL with two compactions behind it and a live tail."""
        wal = WriteAheadLog(str(tmp_path))
        wal.append("register", device_id="d0")
        wal.compact({"version": 2, "marker": 1, "devices": ["d0"]})
        wal.append("register", device_id="d1")
        wal.compact({"version": 2, "marker": 2, "devices": ["d0", "d1"]})
        wal.append("register", device_id="d2")
        return wal

    def test_compact_stamps_crc(self, tmp_path):
        wal = self._two_generations(tmp_path)
        with open(wal.checkpoint_path, encoding="utf-8") as f:
            raw = json.load(f)
        assert raw["crc32"] == checkpoint_crc(raw)
        assert wal.load_checkpoint()["marker"] == 2

    def test_tampered_field_fails_crc(self, tmp_path):
        wal = self._two_generations(tmp_path)
        with open(wal.checkpoint_path, encoding="utf-8") as f:
            raw = json.load(f)
        raw["marker"] = 99  # bit-rot / partial overwrite stand-in
        with open(wal.checkpoint_path, "w", encoding="utf-8") as f:
            json.dump(raw, f)
        with pytest.raises(CheckpointCorruptError, match="CRC"):
            wal.load_checkpoint()

    def test_garbage_checkpoint_detected(self, tmp_path):
        wal = self._two_generations(tmp_path)
        with open(wal.checkpoint_path, "w", encoding="utf-8") as f:
            f.write("\x00\x01not json at all")
        with pytest.raises(CheckpointCorruptError, match="unparseable"):
            wal.load_checkpoint()

    def test_truncated_checkpoint_detected(self, tmp_path):
        wal = self._two_generations(tmp_path)
        with open(wal.checkpoint_path, encoding="utf-8") as f:
            raw = f.read()
        with open(wal.checkpoint_path, "w", encoding="utf-8") as f:
            f.write(raw[: len(raw) // 2])  # torn write
        with pytest.raises(CheckpointCorruptError):
            wal.load_checkpoint()

    def test_legacy_checkpoint_without_crc_accepted(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        atomic_write_json(wal.checkpoint_path, {"version": 2, "marker": 5})
        assert wal.load_checkpoint()["marker"] == 5

    def test_recovery_base_clean_path(self, tmp_path):
        wal = self._two_generations(tmp_path)
        snapshot, entries, degraded = wal.recovery_base()
        assert snapshot["marker"] == 2
        assert [e["device_id"] for e in entries] == ["d2"]
        assert not degraded
        assert wal.fallbacks == 0

    def test_fallback_to_previous_generation(self, tmp_path):
        wal = self._two_generations(tmp_path)
        with open(wal.checkpoint_path, "w", encoding="utf-8") as f:
            f.write("garbage")
        snapshot, entries, degraded = wal.recovery_base()
        # Previous checkpoint + its log suffix + the live tail covers
        # the exact same history the damaged generation did.
        assert snapshot["marker"] == 1
        assert [e["device_id"] for e in entries] == ["d1", "d2"]
        assert degraded
        assert wal.fallbacks == 1

    def test_both_generations_corrupt_replays_logs_only(self, tmp_path):
        wal = self._two_generations(tmp_path)
        for path in (wal.checkpoint_path, wal.prev_checkpoint_path):
            with open(path, "w", encoding="utf-8") as f:
                f.write("garbage")
        snapshot, entries, degraded = wal.recovery_base()
        assert snapshot is None
        assert [e["device_id"] for e in entries] == ["d1", "d2"]
        assert degraded

    def test_server_recovery_survives_corrupt_checkpoint(self, tmp_path):
        sim = Simulator(seed=23)
        server, network, _, clients = wal_setup(sim, tmp_path / "wal")
        collected = []
        server.submit_task(
            make_spec(spatial_density=2, sampling_duration_s=1800.0),
            collected.append,
        )
        sim.run(until=300.0)
        server._wal.checkpoint(server)
        sim.run(until=500.0)
        server._wal.checkpoint(server)
        sim.run(until=650.0)
        server.crash()
        pre = durable_state(server)
        assert pre["accepted_uploads"] > 0
        # Damage the newest checkpoint between crash and restart.
        with open(server._wal.wal.checkpoint_path, "w", encoding="utf-8") as f:
            f.write("{corrupt")
        server.restart()
        post = durable_state(server)
        assert check_recovery_invariants(pre, post) == []
        assert server._wal.wal.fallbacks == 1
        assert server.epoch == 2
        # Collection resumes on the recovered incumbent.
        sim.run(until=1400.0)
        assert server.stats.data_points > pre["accepted_uploads"] - 1
        server.shutdown()

    def test_violations_are_structured_and_stringly(self):
        """check_recovery_invariants returns RecoveryViolation records:
        each is a str (backward compat — joins, substring asserts and
        ``== []`` all keep working) carrying a stable code and the
        offending keys for programmatic consumers."""
        base = {
            "accepted_uploads": 3,
            "requests_satisfied": 1,
            "burned_upload_ids": ["a", "b", "c"],
            "devices": {"d0": {"times_selected": 2}},
            "tasks": {},
            "assignments": {},
            "epoch": 1,
        }
        post = dict(base)
        post["burned_upload_ids"] = ["b", "c", "ghost"]
        post["epoch"] = 5
        violations = check_recovery_invariants(base, post)
        codes = {v.code for v in violations}
        assert codes == {"KEYS_RESURRECTED", "KEYS_CONJURED", "EPOCH_SKEW"}
        by_code = {v.code: v for v in violations}
        assert isinstance(by_code["KEYS_RESURRECTED"], RecoveryViolation)
        assert isinstance(by_code["KEYS_RESURRECTED"], str)
        assert by_code["KEYS_RESURRECTED"].keys == ("a",)
        assert by_code["KEYS_CONJURED"].keys == ("ghost",)
        assert "resurrected" in by_code["KEYS_RESURRECTED"]
        assert "\n".join(violations)  # string view survives joining
        record = by_code["EPOCH_SKEW"].as_dict()
        assert record["code"] == "EPOCH_SKEW"
        assert record["message"] == str(by_code["EPOCH_SKEW"])

    def test_violation_codes_cover_each_divergence(self):
        base = {
            "accepted_uploads": 3,
            "requests_satisfied": 1,
            "burned_upload_ids": [],
            "devices": {"d0": {"times_selected": 2}},
            "tasks": {"t1": "spec"},
            "assignments": {"r1": ["d0"]},
            "epoch": 1,
        }
        cases = {
            "UPLOADS_DIVERGED": {"accepted_uploads": 99},
            "SATISFIED_DIVERGED": {"requests_satisfied": 0},
            "DEVICE_SET_DIVERGED": {"devices": {}},
            "DEVICE_RECORD_DIVERGED": {
                "devices": {"d0": {"times_selected": 7}}
            },
            "TASKS_DIVERGED": {"tasks": {}},
            "ASSIGNMENT_ONE_SIDED": {"assignments": {}},
            "ASSIGNMENT_DIVERGED": {"assignments": {"r1": ["d9"]}},
        }
        for expected_code, mutation in cases.items():
            post = dict(base)
            post["epoch"] = 2  # correct advance; isolate the mutation
            post.update(mutation)
            codes = {v.code for v in check_recovery_invariants(base, post)}
            assert expected_code in codes, (expected_code, codes)

    def test_clean_recovery_is_empty_list(self):
        base = {
            "accepted_uploads": 0,
            "requests_satisfied": 0,
            "burned_upload_ids": [],
            "devices": {},
            "tasks": {},
            "assignments": {},
            "epoch": 1,
        }
        post = dict(base)
        post["epoch"] = 2
        assert check_recovery_invariants(base, post) == []

    def test_recovery_rewrites_a_good_checkpoint(self, tmp_path):
        sim = Simulator(seed=23)
        server, network, _, clients = wal_setup(sim, tmp_path / "wal")
        sim.run(until=100.0)
        server._wal.checkpoint(server)
        server.crash()
        with open(server._wal.wal.checkpoint_path, "w", encoding="utf-8") as f:
            f.write("garbage")
        server.restart()
        # The end-of-recovery compaction installed a fresh, valid,
        # CRC-stamped checkpoint over the damaged one.
        reread = server._wal.wal.load_checkpoint()
        assert reread["epoch"] == server.epoch
        server.shutdown()
