"""Tests for the selector-weight sensitivity sweep."""

from __future__ import annotations

import pytest

from repro.experiments import weight_sweep
from repro.experiments.common import ScenarioConfig


@pytest.fixture(scope="module")
def points():
    return weight_sweep.run(ScenarioConfig(seed=7), worlds=4)


class TestWeightSweep:
    def test_all_settings_present(self, points):
        assert [p.label for p in points] == [
            label for label, _ in weight_sweep.DEFAULT_SWEEP
        ]

    def test_fairness_falls_along_sweep(self, points):
        """The sweep is ordered fairness-heavy → TTL-heavy: Jain must
        trend down (β-dominant settings are equivalent up to tie-break
        noise, so allow a small tolerance between neighbours)."""
        jains = [p.jain for p in points]
        for a, b in zip(jains, jains[1:]):
            assert b <= a + 0.02
        assert jains[-1] < jains[0] - 0.05  # the ends differ clearly

    def test_ttl_only_concentrates_load(self, points):
        by_label = {p.label: p for p in points}
        assert (
            by_label["ttl-only"].devices_used
            < by_label["fairness-only"].devices_used
        )
        assert (
            by_label["ttl-only"].max_selections
            >= by_label["fairness-only"].max_selections
        )

    def test_data_delivery_unaffected_by_weights(self, points):
        """Weight choices trade energy/fairness, never data."""
        data_counts = {p.data_points for p in points}
        assert len(data_counts) == 1

    def test_invalid_worlds(self):
        with pytest.raises(ValueError):
            weight_sweep.run(worlds=0)
