"""Measure line coverage of ``src/repro`` with the stdlib only.

The CI coverage job uses ``pytest-cov``, but that package is not part
of the local toolchain; this script produces the reference number the
CI floor is ratcheted against using nothing but ``sys.settrace``.

Method: the denominator is every executable line in ``src/repro``
(line numbers harvested from compiled code objects, the same source
``coverage.py`` uses); the numerator is every line observed by a trace
hook while the tier-1 suite runs in-process.  Frames outside
``src/repro`` opt out of line tracing, so the overhead stays a few x.

Usage::

    PYTHONPATH=src python tools/coverage_floor.py [pytest args...]
"""

from __future__ import annotations

import os
import sys
import threading
from collections import defaultdict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")


def executable_lines(path: str) -> set:
    """All line numbers that can execute in ``path``."""
    with open(path, "r", encoding="utf-8") as f:
        source = f.read()
    lines = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines


def collect_denominator() -> dict:
    per_file = {}
    for dirpath, _dirnames, filenames in os.walk(SRC_ROOT):
        for name in filenames:
            if name.endswith(".py"):
                path = os.path.abspath(os.path.join(dirpath, name))
                per_file[path] = executable_lines(path)
    return per_file


def main(argv) -> int:
    hit = defaultdict(set)
    prefix = SRC_ROOT + os.sep

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not (filename.startswith(prefix) or filename == SRC_ROOT):
            return None  # never line-trace foreign frames
        if event == "line":
            hit[filename].add(frame.f_lineno)
        return tracer

    import pytest

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        exit_code = pytest.main(["-q", "-p", "no:cacheprovider", *argv])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    per_file = collect_denominator()
    total = covered = 0
    rows = []
    for path in sorted(per_file):
        lines = per_file[path]
        seen = hit.get(path, set()) & lines
        total += len(lines)
        covered += len(seen)
        if lines:
            rows.append((len(seen) / len(lines), path, len(seen), len(lines)))
    rows.sort()
    print("\nleast-covered modules:")
    for pct, path, seen, n in rows[:15]:
        rel = os.path.relpath(path, REPO_ROOT)
        print(f"  {pct * 100:5.1f}%  {seen:4d}/{n:<4d}  {rel}")
    overall = 100.0 * covered / total if total else 0.0
    print(f"\nTOTAL line coverage (src/repro): {overall:.2f}% ({covered}/{total})")
    return exit_code


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
